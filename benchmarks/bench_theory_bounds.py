"""Section 4.1 theory: Lemma 1/2 bounds vs Monte-Carlo, plus the measured
fallback rate of the CMS+HT kernel against Theorem 1's regime."""

import numpy as np

from repro import ClassicLP, GLPEngine
from repro.bench import run_theory_bounds
from repro.bench.datasets import load_dataset


def test_theory_bounds(benchmark, save_report):
    text, data = benchmark.pedantic(
        run_theory_bounds, kwargs={"trials": 400}, rounds=1, iterations=1
    )

    # Lemma 1: measured <= exact <= bound (up to Monte-Carlo noise).
    for m, h, f_max, bound, exact, measured in data["lemma1"]:
        assert exact <= bound + 1e-12, (m, h, f_max)
        assert measured <= bound + 0.05, (m, h, f_max)
    # Lemma 2: measured <= bound (again with MC slack).
    for m, d, bound, measured in data["lemma2"]:
        assert measured <= bound + 0.05, (m, d)

    # Kernel-level: the smem kernel's measured global-fallback rate drops
    # as communities form (m shrinks, f_max grows — Theorem 1's regime).
    graph = load_dataset("twitter")
    engine = GLPEngine()
    result = engine.run(
        graph, ClassicLP(), max_iterations=6, stop_on_convergence=False
    )
    rates = []
    for stats in result.iterations:
        high = stats.kernel_stats.get("smem_high_vertices", 0)
        fallback = stats.kernel_stats.get("smem_fallback_vertices", 0)
        rates.append(fallback / high if high else 0.0)
    assert np.mean(rates[3:]) <= np.mean(rates[:2]) + 0.05, rates
    fallback_text = (
        "\nCMS+HT kernel fallback rate per iteration (twitter stand-in): "
        + ", ".join(f"{rate:.2%}" for rate in rates)
    )
    save_report("theory_bounds", text + fallback_text,
                dict(data, kernel_fallback_rates=rates))
