"""Table 3: ablation of the CMS+HT and warp-centric optimizations."""

from repro.bench import run_table3


def test_table3_ablation(benchmark, save_report):
    text, data = benchmark.pedantic(
        run_table3, kwargs={"iterations": 8}, rounds=1, iterations=1
    )
    save_report("table3_ablation", text, data)

    # Shape assertions from the paper's analysis:
    # (1) both optimizations help (no slowdowns);
    for dataset, speedups in data.items():
        assert speedups["smem"] >= 0.95, (dataset, speedups)
        assert speedups["smem+warp"] >= speedups["smem"] * 0.95, dataset
    # (2) smem's gain tracks average degree — aligraph is the extreme case
    #     ("the aligraph dataset has the largest average degree ... most of
    #     the vertices can benefit from smem");
    assert data["aligraph"]["smem"] == max(
        d["smem"] for d in data.values()
    )
    assert data["aligraph"]["smem"] > 4.0
    # (3) the warp optimization gives its largest *additional* boost on the
    #     small-constant-degree graphs (roadNet's "small constant degree
    #     ... leads to heavy workload imbalance").
    additional = {
        name: d["smem+warp"] / d["smem"] for name, d in data.items()
    }
    top_two = sorted(additional, key=additional.get, reverse=True)[:2]
    assert "roadNet" in top_two, additional
