"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.graph.generators.community import planted_partition_graph
from repro.graph.generators.rmat import rmat_graph


@pytest.fixture
def triangle_graph() -> CSRGraph:
    """A 3-cycle: the smallest graph with non-trivial propagation."""
    src = np.array([0, 1, 2])
    dst = np.array([1, 2, 0])
    return from_edge_arrays(src, dst, 3, symmetrize=True, name="triangle")


@pytest.fixture
def star_graph() -> CSRGraph:
    """A hub with 8 leaves (degree skew in miniature)."""
    src = np.zeros(8, dtype=np.int64)
    dst = np.arange(1, 9, dtype=np.int64)
    return from_edge_arrays(src, dst, 9, symmetrize=True, name="star")


@pytest.fixture
def two_cliques_graph() -> CSRGraph:
    """Two 5-cliques joined by one bridge edge — two obvious communities."""
    edges = []
    for base in (0, 5):
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((base + i, base + j))
    edges.append((4, 5))
    src = np.array([e[0] for e in edges])
    dst = np.array([e[1] for e in edges])
    return from_edge_arrays(src, dst, 10, symmetrize=True, name="two-cliques")


@pytest.fixture
def community_graph():
    """A planted-partition graph plus its ground truth membership."""
    return planted_partition_graph(400, 8, 10.0, 0.9, seed=7)


@pytest.fixture
def powerlaw_graph() -> CSRGraph:
    """A small R-MAT graph with genuine degree skew."""
    return rmat_graph(9, 6.0, seed=21, name="rmat-small")


@pytest.fixture
def empty_graph() -> CSRGraph:
    """A graph with vertices but no edges."""
    return CSRGraph(
        offsets=np.zeros(6, dtype=np.int64),
        indices=np.empty(0, dtype=np.int64),
        name="empty",
    )
