"""Tests for the shared MFL building blocks."""

import numpy as np
import pytest

from repro.algorithms import ClassicLP
from repro.kernels import mfl
from repro.types import LABEL_DTYPE


class TestExpandEdges:
    def test_full_graph(self, star_graph):
        batch = mfl.expand_edges(star_graph)
        assert batch.num_edges == star_graph.num_edges
        assert np.array_equal(batch.neighbor_ids, star_graph.indices)
        assert np.array_equal(
            batch.edge_positions, np.arange(star_graph.num_edges)
        )

    def test_subset_contiguous_positions(self, star_graph):
        batch = mfl.expand_edges(star_graph, np.array([0, 3]))
        assert batch.num_edges == star_graph.degree(0) + star_graph.degree(3)
        # Positions must point at the right CSR slots.
        for vid, nbr, pos in zip(
            batch.vertex_ids, batch.neighbor_ids, batch.edge_positions
        ):
            assert star_graph.indices[pos] == nbr
            lo, hi = star_graph.offsets[vid], star_graph.offsets[vid + 1]
            assert lo <= pos < hi

    def test_subset_with_isolated_vertex(self, empty_graph):
        batch = mfl.expand_edges(empty_graph, np.array([1, 2]))
        assert batch.num_edges == 0
        assert batch.vertices.tolist() == [1, 2]

    def test_weights_default_to_ones(self, triangle_graph):
        batch = mfl.expand_edges(triangle_graph)
        assert np.all(batch.edge_weights == 1.0)


class TestAggregation:
    def test_counts_simple(self, two_cliques_graph):
        labels = np.zeros(10, dtype=LABEL_DTYPE)
        labels[5:] = 1
        batch = mfl.expand_edges(two_cliques_graph)
        groups = mfl.aggregate_label_frequencies(
            ClassicLP(), batch, labels
        )
        # Vertex 0 (clique A, away from bridge): all 4 neighbors label 0.
        mask = groups.vertex_ids == 0
        assert groups.labels[mask].tolist() == [0]
        assert groups.frequencies[mask].tolist() == [4.0]
        # Vertex 4 (bridge endpoint): 4 label-0 + 1 label-1.
        mask = groups.vertex_ids == 4
        assert dict(
            zip(groups.labels[mask].tolist(), groups.frequencies[mask])
        ) == {0: 4.0, 1: 1.0}

    def test_groups_sorted_by_vertex_then_label(self, powerlaw_graph):
        labels = np.arange(powerlaw_graph.num_vertices, dtype=LABEL_DTYPE) % 7
        batch = mfl.expand_edges(powerlaw_graph)
        groups = mfl.aggregate_label_frequencies(ClassicLP(), batch, labels)
        keys = groups.vertex_ids * 1000 + groups.labels
        assert np.all(np.diff(keys) > 0)

    def test_group_of_edge_mapping(self, triangle_graph):
        labels = np.array([5, 5, 9], dtype=LABEL_DTYPE)
        batch = mfl.expand_edges(triangle_graph)
        groups = mfl.aggregate_label_frequencies(ClassicLP(), batch, labels)
        # Every edge maps to the group holding its (vertex, label).
        sorted_vertices = batch.vertex_ids[groups.edge_order]
        for i, group in enumerate(groups.group_of_edge):
            assert groups.vertex_ids[group] == sorted_vertices[i]

    def test_frequencies_sum_to_edge_weights(self, powerlaw_graph):
        rng = np.random.default_rng(0)
        labels = rng.integers(
            0, 20, powerlaw_graph.num_vertices
        ).astype(LABEL_DTYPE)
        batch = mfl.expand_edges(powerlaw_graph)
        groups = mfl.aggregate_label_frequencies(ClassicLP(), batch, labels)
        assert groups.frequencies.sum() == pytest.approx(
            batch.edge_weights.sum()
        )

    def test_empty_batch(self, empty_graph):
        batch = mfl.expand_edges(empty_graph)
        groups = mfl.aggregate_label_frequencies(
            ClassicLP(), batch, np.zeros(5, dtype=LABEL_DTYPE)
        )
        assert groups.num_groups == 0

    def test_distinct_counts(self, two_cliques_graph):
        labels = np.arange(10, dtype=LABEL_DTYPE)
        batch = mfl.expand_edges(two_cliques_graph)
        groups = mfl.aggregate_label_frequencies(ClassicLP(), batch, labels)
        vertices, counts = groups.distinct_counts()
        # All neighbor labels unique -> m equals degree.
        for v, m in zip(vertices, counts):
            assert m == two_cliques_graph.degree(int(v))


class TestSelectBest:
    def test_most_frequent_wins(self, star_graph):
        labels = np.array([9, 3, 3, 3, 4, 4, 5, 6, 7], dtype=LABEL_DTYPE)
        batch = mfl.expand_edges(star_graph, np.array([0]))
        groups = mfl.aggregate_label_frequencies(ClassicLP(), batch, labels)
        best_labels, best_scores = mfl.select_best_labels(
            ClassicLP(), groups, np.array([0]), labels
        )
        assert best_labels[0] == 3
        assert best_scores[0] == 3.0

    def test_tie_breaks_to_smaller_label(self, star_graph):
        labels = np.array([9, 8, 8, 2, 2, 5, 6, 7, 1], dtype=LABEL_DTYPE)
        batch = mfl.expand_edges(star_graph, np.array([0]))
        groups = mfl.aggregate_label_frequencies(ClassicLP(), batch, labels)
        best_labels, _ = mfl.select_best_labels(
            ClassicLP(), groups, np.array([0]), labels
        )
        assert best_labels[0] == 2  # 2 and 8 both appear twice

    def test_isolated_vertex_keeps_label(self, empty_graph):
        labels = np.array([4, 5, 6, 7, 8], dtype=LABEL_DTYPE)
        batch = mfl.expand_edges(empty_graph, np.array([2]))
        groups = mfl.aggregate_label_frequencies(ClassicLP(), batch, labels)
        best_labels, best_scores = mfl.select_best_labels(
            ClassicLP(), groups, np.array([2]), labels
        )
        assert best_labels[0] == 6
        assert best_scores[0] == mfl.NO_SCORE

    def test_per_vertex_extremes(self, star_graph):
        labels = np.array([9, 3, 3, 3, 4, 4, 5, 6, 7], dtype=LABEL_DTYPE)
        batch = mfl.expand_edges(star_graph)
        groups = mfl.aggregate_label_frequencies(ClassicLP(), batch, labels)
        vertices, m, f_max = mfl.per_vertex_extremes(groups)
        hub = np.flatnonzero(vertices == 0)[0]
        assert m[hub] == 5  # labels {3,4,5,6,7}
        assert f_max[hub] == 3.0
