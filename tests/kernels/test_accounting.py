"""Tests that the kernels produce the counter *profiles* the paper's
arguments rely on — not just correct labels."""

import numpy as np
import pytest

from repro.algorithms import ClassicLP
from repro.graph.generators.bipartite import dense_interaction_core
from repro.graph.generators.road import road_network_graph
from repro.gpusim.device import Device
from repro.kernels.base import KernelContext, StrategyConfig
from repro.kernels.global_hash import run_global_hash
from repro.kernels.segmented_sort import run_segmented_sort
from repro.kernels.smem_cms_ht import run_smem_cms_ht
from repro.kernels.warp_centric import run_warp_multi
from repro.types import LABEL_DTYPE


def make_ctx(graph, labels, **config_kwargs):
    return KernelContext(
        device=Device(),
        graph=graph,
        current_labels=labels,
        program=ClassicLP(),
        config=StrategyConfig(**config_kwargs),
    )


@pytest.fixture(scope="module")
def dense_graph():
    """An aligraph-like core: every vertex is high degree."""
    return dense_interaction_core(128, 60.0, seed=2)


@pytest.fixture(scope="module")
def road_graph():
    return road_network_graph(30, 30, seed=2)


class TestSmemVsGlobal:
    def test_smem_kernel_avoids_global_counting_traffic(self, dense_graph):
        """Section 4.1's point: with concentrated labels the CMS+HT kernel
        counts entirely in shared memory while the global-hash kernel pays
        a transaction per neighbor."""
        labels = (
            np.arange(dense_graph.num_vertices, dtype=LABEL_DTYPE) % 3
        )
        vertices = np.flatnonzero(dense_graph.degrees > 16).astype(np.int64)

        smem_ctx = make_ctx(dense_graph, labels)
        run_smem_cms_ht(smem_ctx, vertices)
        global_ctx = make_ctx(dense_graph, labels)
        run_global_hash(global_ctx, vertices)

        smem_counters = smem_ctx.device.counters
        global_counters = global_ctx.device.counters
        # The smem kernel did its counting on-chip...
        assert smem_counters.shared_store_ops > 0
        assert smem_counters.global_atomic_ops == 0  # no fallback needed
        # ...while the global kernel hit device memory per neighbor.
        assert global_counters.global_atomic_ops > 0
        assert (
            global_counters.global_transactions
            > 1.5 * smem_counters.global_transactions
        )

    def test_concentrated_labels_serialize_global_atomics(self, dense_graph):
        vertices = np.flatnonzero(dense_graph.degrees > 16).astype(np.int64)
        rng = np.random.default_rng(0)

        diverse = rng.integers(
            0, dense_graph.num_vertices, dense_graph.num_vertices
        ).astype(LABEL_DTYPE)
        ctx_div = make_ctx(dense_graph, diverse)
        run_global_hash(ctx_div, vertices)

        concentrated = (diverse % 2).astype(LABEL_DTYPE)
        ctx_conc = make_ctx(dense_graph, concentrated)
        run_global_hash(ctx_conc, vertices)

        assert (
            ctx_conc.device.counters.global_atomic_serialized_ops
            > 2 * ctx_div.device.counters.global_atomic_serialized_ops
        )

    def test_no_fallback_when_labels_fit_ht(self, dense_graph):
        labels = (
            np.arange(dense_graph.num_vertices, dtype=LABEL_DTYPE) % 7
        )
        vertices = np.flatnonzero(dense_graph.degrees > 16).astype(np.int64)
        ctx = make_ctx(dense_graph, labels, ht_capacity=64)
        run_smem_cms_ht(ctx, vertices)
        assert ctx.stats["smem_fallback_vertices"] == 0
        assert ctx.stats["smem_overflow_groups"] == 0

    def test_fallback_engages_with_tiny_ht(self, dense_graph):
        rng = np.random.default_rng(1)
        labels = rng.integers(
            0, dense_graph.num_vertices, dense_graph.num_vertices
        ).astype(LABEL_DTYPE)
        vertices = np.flatnonzero(dense_graph.degrees > 16).astype(np.int64)
        ctx = make_ctx(dense_graph, labels, ht_capacity=2, cms_depth=2)
        run_smem_cms_ht(ctx, vertices)
        assert ctx.stats["smem_overflow_groups"] > 0
        # With unique-ish labels and a 2-slot HT, fallbacks must happen...
        assert ctx.stats["smem_fallback_vertices"] > 0
        # ...and they show up as global atomics.
        assert ctx.device.counters.global_atomic_ops > 0


class TestWarpPacking:
    def test_warp_multi_improves_lane_utilization(self, road_graph):
        """Section 4.2: one-warp-one-vertex wastes ~29/32 lanes on roads;
        packing multiple vertices per warp fixes utilization."""
        labels = np.arange(road_graph.num_vertices, dtype=LABEL_DTYPE)
        low = np.flatnonzero(road_graph.degrees < 32).astype(np.int64)

        packed_ctx = make_ctx(road_graph, labels)
        run_warp_multi(packed_ctx, low)
        warp_per_vertex_ctx = make_ctx(road_graph, labels)
        run_global_hash(warp_per_vertex_ctx, low)

        assert (
            packed_ctx.device.counters.lane_utilization
            > 2 * warp_per_vertex_ctx.device.counters.lane_utilization
        )

    def test_warp_multi_launches_fewer_warps(self, road_graph):
        labels = np.arange(road_graph.num_vertices, dtype=LABEL_DTYPE)
        low = np.flatnonzero(road_graph.degrees < 32).astype(np.int64)

        packed_ctx = make_ctx(road_graph, labels)
        run_warp_multi(packed_ctx, low)
        baseline_ctx = make_ctx(road_graph, labels)
        run_global_hash(baseline_ctx, low)

        assert (
            packed_ctx.device.counters.warps_launched
            < baseline_ctx.device.counters.warps_launched / 2
        )

    def test_warp_multi_uses_no_atomics(self, road_graph):
        labels = np.arange(road_graph.num_vertices, dtype=LABEL_DTYPE)
        low = np.flatnonzero(road_graph.degrees < 32).astype(np.int64)
        ctx = make_ctx(road_graph, labels)
        run_warp_multi(ctx, low)
        counters = ctx.device.counters
        assert counters.global_atomic_ops == 0
        assert counters.shared_atomic_serialized_ops == 0

    def test_popc_edges_match_batch(self, road_graph):
        """The intrinsics really executed: popc over all lmasks counts each
        active lane exactly as many times as its label's frequency."""
        labels = (
            np.arange(road_graph.num_vertices, dtype=LABEL_DTYPE) % 11
        )
        low = np.flatnonzero(
            (road_graph.degrees < 32) & (road_graph.degrees > 0)
        ).astype(np.int64)
        ctx = make_ctx(road_graph, labels)
        run_warp_multi(ctx, low)
        assert ctx.stats["warp_multi_warps"] > 0
        # sum over lanes of freq(lane) = sum over groups freq^2 >= edges.
        total_edges = int(road_graph.degrees[low].sum())
        assert ctx.stats["warp_multi_popc_edges"] >= total_edges


class TestGSortProfile:
    def test_gsort_allocates_nl_array(self, dense_graph):
        labels = np.arange(dense_graph.num_vertices, dtype=LABEL_DTYPE)
        vertices = np.arange(dense_graph.num_vertices, dtype=np.int64)
        ctx = make_ctx(dense_graph, labels)
        run_segmented_sort(ctx, vertices)
        # NL array freed afterwards...
        assert ctx.device.allocated_bytes == 0
        # ...but the extra gather+store+scan traffic happened.
        assert (
            ctx.device.counters.global_store_transactions > 0
        )

    def test_gsort_more_traffic_than_glp_kernels(self, dense_graph):
        labels = (
            np.arange(dense_graph.num_vertices, dtype=LABEL_DTYPE) % 5
        )
        vertices = np.flatnonzero(dense_graph.degrees > 16).astype(np.int64)

        gsort_ctx = make_ctx(dense_graph, labels)
        run_segmented_sort(gsort_ctx, vertices)
        smem_ctx = make_ctx(dense_graph, labels)
        run_smem_cms_ht(smem_ctx, vertices)

        assert (
            gsort_ctx.device.counters.global_transactions
            > 2 * smem_ctx.device.counters.global_transactions
        )
