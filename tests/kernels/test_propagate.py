"""Tests for the composed LabelPropagation pass."""

import numpy as np
import pytest

from repro.algorithms import ClassicLP
from repro.errors import KernelError
from repro.gpusim.device import Device
from repro.kernels.base import (
    GLOBAL_BASELINE,
    GLP_DEFAULT,
    SMEM_ONLY,
    SMEM_WARP,
    KernelContext,
    StrategyConfig,
)
from repro.kernels.propagate import propagate_pass, segmented_sort_pass
from repro.types import LABEL_DTYPE


def make_ctx(graph, labels, config=GLP_DEFAULT):
    return KernelContext(
        device=Device(),
        graph=graph,
        current_labels=labels,
        program=ClassicLP(),
        config=config,
    )


ALL_CONFIGS = [GLP_DEFAULT, GLOBAL_BASELINE, SMEM_ONLY, SMEM_WARP]


class TestComposition:
    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_all_configs_agree(self, powerlaw_graph, config):
        rng = np.random.default_rng(0)
        labels = rng.integers(
            0, 40, powerlaw_graph.num_vertices
        ).astype(LABEL_DTYPE)
        reference = propagate_pass(make_ctx(powerlaw_graph, labels))
        result = propagate_pass(make_ctx(powerlaw_graph, labels, config))
        assert np.array_equal(result.best_labels, reference.best_labels)

    def test_gsort_pass_agrees(self, powerlaw_graph):
        rng = np.random.default_rng(1)
        labels = rng.integers(
            0, 40, powerlaw_graph.num_vertices
        ).astype(LABEL_DTYPE)
        reference = propagate_pass(make_ctx(powerlaw_graph, labels))
        result = segmented_sort_pass(make_ctx(powerlaw_graph, labels))
        assert np.array_equal(result.best_labels, reference.best_labels)

    def test_vertex_subset(self, powerlaw_graph):
        labels = np.arange(powerlaw_graph.num_vertices, dtype=LABEL_DTYPE)
        subset = np.arange(0, powerlaw_graph.num_vertices, 3)
        result = propagate_pass(
            make_ctx(powerlaw_graph, labels), vertices=subset
        )
        assert np.array_equal(result.vertices, subset)
        assert result.best_labels.size == subset.size

    def test_bins_reported(self, powerlaw_graph):
        labels = np.arange(powerlaw_graph.num_vertices, dtype=LABEL_DTYPE)
        result = propagate_pass(make_ctx(powerlaw_graph, labels))
        assert result.bins.total == powerlaw_graph.num_vertices

    def test_full_glp_uses_all_three_kernels(self, powerlaw_graph):
        labels = np.arange(powerlaw_graph.num_vertices, dtype=LABEL_DTYPE)
        ctx = make_ctx(
            powerlaw_graph,
            labels,
            StrategyConfig(low_threshold=4, high_threshold=16),
        )
        propagate_pass(ctx)
        names = {record.name for record in ctx.device.timeline}
        assert {"smem-cms-ht", "warp-shared-ht", "warp-multi"} <= names

    def test_global_baseline_single_kernel(self, powerlaw_graph):
        labels = np.arange(powerlaw_graph.num_vertices, dtype=LABEL_DTYPE)
        ctx = make_ctx(powerlaw_graph, labels, GLOBAL_BASELINE)
        propagate_pass(ctx)
        names = {record.name for record in ctx.device.timeline}
        assert names == {"global-hash"}


class TestStrategyConfig:
    def test_invalid_strategies_rejected(self):
        with pytest.raises(KernelError):
            StrategyConfig(high_strategy="bogus")
        with pytest.raises(KernelError):
            StrategyConfig(mid_strategy="bogus")
        with pytest.raises(KernelError):
            StrategyConfig(low_strategy="bogus")

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(KernelError):
            StrategyConfig(ht_capacity=0)
        with pytest.raises(KernelError):
            StrategyConfig(block_size=100)  # not a multiple of 32

    def test_presets_match_paper_rows(self):
        assert GLOBAL_BASELINE.high_strategy == "global"
        assert GLOBAL_BASELINE.low_strategy == "warp_per_vertex"
        assert SMEM_ONLY.high_strategy == "smem"
        assert SMEM_ONLY.low_strategy == "warp_per_vertex"
        assert SMEM_WARP.high_strategy == "smem"
        assert SMEM_WARP.low_strategy == "warp_multi"
        assert GLP_DEFAULT.low_threshold == 32
        assert GLP_DEFAULT.high_threshold == 128
