"""Tests for degree-based vertex binning."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.scheduler import bin_vertices_by_degree


class TestBinning:
    def test_partition_is_complete_and_disjoint(self, powerlaw_graph):
        bins = bin_vertices_by_degree(powerlaw_graph)
        combined = np.concatenate([bins.low, bins.mid, bins.high])
        assert bins.total == powerlaw_graph.num_vertices
        assert np.array_equal(
            np.sort(combined), np.arange(powerlaw_graph.num_vertices)
        )

    def test_thresholds_respected(self, powerlaw_graph):
        bins = bin_vertices_by_degree(
            powerlaw_graph, low_threshold=32, high_threshold=128
        )
        degrees = powerlaw_graph.degrees
        assert np.all(degrees[bins.low] < 32)
        assert np.all((degrees[bins.mid] >= 32) & (degrees[bins.mid] <= 128))
        assert np.all(degrees[bins.high] > 128)

    def test_isolated_vertices_are_low(self, empty_graph):
        bins = bin_vertices_by_degree(empty_graph)
        assert bins.low.size == empty_graph.num_vertices
        assert bins.mid.size == 0 and bins.high.size == 0

    def test_subset_binning(self, powerlaw_graph):
        subset = np.arange(0, powerlaw_graph.num_vertices, 2)
        bins = bin_vertices_by_degree(powerlaw_graph, vertices=subset)
        assert bins.total == subset.size
        combined = np.concatenate([bins.low, bins.mid, bins.high])
        assert set(combined.tolist()) <= set(subset.tolist())

    def test_bins_are_sorted(self, powerlaw_graph):
        bins = bin_vertices_by_degree(powerlaw_graph)
        for arr in (bins.low, bins.mid, bins.high):
            assert np.all(np.diff(arr) > 0) or arr.size <= 1

    def test_invalid_thresholds(self, powerlaw_graph):
        with pytest.raises(KernelError):
            bin_vertices_by_degree(powerlaw_graph, low_threshold=0)
        with pytest.raises(KernelError):
            bin_vertices_by_degree(
                powerlaw_graph, low_threshold=64, high_threshold=32
            )

    def test_summary(self, powerlaw_graph):
        bins = bin_vertices_by_degree(powerlaw_graph)
        summary = bins.summary()
        assert summary["low"] == bins.low.size
        assert sum(summary.values()) == bins.total

    def test_powerlaw_mass_in_low_bin(self, powerlaw_graph):
        """The power-law principle the paper leans on: low-degree vertices
        are the overwhelming majority."""
        bins = bin_vertices_by_degree(powerlaw_graph)
        assert bins.low.size > 0.8 * powerlaw_graph.num_vertices
        assert bins.high.size < 0.05 * powerlaw_graph.num_vertices
