"""Differential tests: every counting strategy computes identical MFLs.

This is the linchpin of the reproduction: the paper's optimizations are
*exact* (Section 4.1 "Special Note" — pruning, not approximation), so the
CMS+HT kernel, the warp-centric kernel, the global-hash baseline and the
segmented-sort baseline must all return byte-identical winners for any
graph, any label distribution, and any (monotone) scoring program.
"""

import numpy as np
import pytest

from repro.algorithms import ClassicLP, LayeredLP
from repro.graph.generators.community import planted_partition_graph
from repro.graph.generators.rmat import rmat_graph
from repro.gpusim.device import Device
from repro.kernels.base import KernelContext, StrategyConfig
from repro.kernels.global_hash import run_global_hash
from repro.kernels.segmented_sort import run_segmented_sort
from repro.kernels.smem_cms_ht import run_smem_cms_ht
from repro.kernels.warp_centric import (
    run_thread_per_vertex,
    run_warp_multi,
    run_warp_shared_ht,
)
from repro.types import LABEL_DTYPE

ALL_KERNELS = [
    run_global_hash,
    run_segmented_sort,
    run_warp_shared_ht,
    run_thread_per_vertex,
]


def make_ctx(graph, labels, program=None, **config_kwargs):
    return KernelContext(
        device=Device(),
        graph=graph,
        current_labels=labels,
        program=program if program is not None else ClassicLP(),
        config=StrategyConfig(**config_kwargs),
    )


def label_distributions(graph, seed=0):
    """A spectrum of label regimes: unique, few, concentrated, converged."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    yield "unique", np.arange(n, dtype=LABEL_DTYPE)
    yield "few", rng.integers(0, 5, n).astype(LABEL_DTYPE)
    yield "many", rng.integers(0, max(2, n // 2), n).astype(LABEL_DTYPE)
    concentrated = np.zeros(n, dtype=LABEL_DTYPE)
    concentrated[rng.random(n) < 0.05] = rng.integers(
        1, 10, int((rng.random(n) < 0.05).sum()) or 1
    )[0]
    yield "concentrated", concentrated


@pytest.mark.parametrize("kernel", ALL_KERNELS)
def test_kernels_match_on_all_vertices(powerlaw_graph, kernel):
    for name, labels in label_distributions(powerlaw_graph):
        vertices = np.arange(powerlaw_graph.num_vertices, dtype=np.int64)
        ref_labels, ref_scores = run_global_hash(
            make_ctx(powerlaw_graph, labels), vertices
        )
        got_labels, got_scores = kernel(
            make_ctx(powerlaw_graph, labels), vertices
        )
        assert np.array_equal(got_labels, ref_labels), name
        assert np.allclose(got_scores, ref_scores), name


def test_smem_cms_ht_matches_on_high_degree(powerlaw_graph):
    """The CMS+HT kernel is exact for high-degree vertices even when the
    distinct-label count exceeds the HT capacity (forcing CMS + fallback)."""
    degrees = powerlaw_graph.degrees
    high = np.flatnonzero(degrees > 16).astype(np.int64)
    assert high.size > 0
    for name, labels in label_distributions(powerlaw_graph, seed=3):
        # Tiny HT to force overflow and exercise the fallback path.
        ctx = make_ctx(
            powerlaw_graph, labels, ht_capacity=4, cms_depth=2, cms_width=16
        )
        got_labels, got_scores = run_smem_cms_ht(ctx, high)
        ref_labels, ref_scores = run_global_hash(
            make_ctx(powerlaw_graph, labels), high
        )
        assert np.array_equal(got_labels, ref_labels), name
        assert np.allclose(got_scores, ref_scores), name


def test_warp_multi_matches_on_low_degree(powerlaw_graph):
    degrees = powerlaw_graph.degrees
    low = np.flatnonzero(degrees < 32).astype(np.int64)
    for name, labels in label_distributions(powerlaw_graph, seed=5):
        got_labels, got_scores = run_warp_multi(
            make_ctx(powerlaw_graph, labels), low
        )
        ref_labels, ref_scores = run_global_hash(
            make_ctx(powerlaw_graph, labels), low
        )
        assert np.array_equal(got_labels, ref_labels), name
        assert np.allclose(got_scores, ref_scores), name


def test_kernels_match_with_llp_scoring():
    """Strategy equivalence must hold for non-trivial score functions."""
    graph, _ = planted_partition_graph(300, 6, 8.0, 0.8, seed=9)
    rng = np.random.default_rng(9)
    labels = rng.integers(0, 50, graph.num_vertices).astype(LABEL_DTYPE)
    vertices = np.arange(graph.num_vertices, dtype=np.int64)

    def fresh_program():
        program = LayeredLP(gamma=2.0)
        program.init_state(graph, labels)
        return program

    ref = run_global_hash(
        make_ctx(graph, labels, program=fresh_program()), vertices
    )
    for kernel in (run_segmented_sort, run_warp_shared_ht):
        got = kernel(
            make_ctx(graph, labels, program=fresh_program()), vertices
        )
        assert np.array_equal(got[0], ref[0])
        assert np.allclose(got[1], ref[1])


def test_smem_fallback_stats_recorded(powerlaw_graph):
    rng = np.random.default_rng(11)
    labels = rng.integers(
        0, powerlaw_graph.num_vertices, powerlaw_graph.num_vertices
    ).astype(LABEL_DTYPE)
    high = np.flatnonzero(powerlaw_graph.degrees > 16).astype(np.int64)
    ctx = make_ctx(powerlaw_graph, labels, ht_capacity=4, cms_depth=2)
    run_smem_cms_ht(ctx, high)
    assert ctx.stats["smem_high_vertices"] == high.size
    assert 0 <= ctx.stats["smem_fallback_vertices"] <= high.size


def test_empty_vertex_subsets():
    graph = rmat_graph(6, 3.0, seed=1)
    labels = np.arange(graph.num_vertices, dtype=LABEL_DTYPE)
    empty = np.empty(0, dtype=np.int64)
    for kernel in ALL_KERNELS + [run_smem_cms_ht, run_warp_multi]:
        got_labels, got_scores = kernel(make_ctx(graph, labels), empty)
        assert got_labels.size == 0
        assert got_scores.size == 0
