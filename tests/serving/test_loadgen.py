"""Tests for the deterministic bursty load generator."""

import pytest

from repro.errors import ServingError
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)
from repro.serving.loadgen import (
    DayEnd,
    LoadGenConfig,
    LoadGenerator,
    ScoreRequest,
    TxnBatch,
)


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=600,
            num_products=300,
            num_days=10,
            transactions_per_day=300,
            num_rings=2,
            ring_size=5,
            seed=11,
        )
    )


class TestConfigValidation:
    def test_defaults_valid(self):
        LoadGenConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_users": 0},
            {"qps": 0.0},
            {"day_seconds": -1.0},
            {"burst_factor": 0.5},
            {"burst_fraction": 1.0},
            {"hot_fraction": 1.5},
            {"batches_per_day": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ServingError):
            LoadGenConfig(**kwargs)


class TestSchedule:
    def test_same_seed_same_schedule(self, stream):
        a = LoadGenerator(stream, LoadGenConfig(seed=5)).schedule(4, 3)
        b = LoadGenerator(stream, LoadGenConfig(seed=5)).schedule(4, 3)
        assert a == b

    def test_different_seed_different_requests(self, stream):
        a = LoadGenerator(stream, LoadGenConfig(seed=5)).schedule(4, 3)
        b = LoadGenerator(stream, LoadGenConfig(seed=6)).schedule(4, 3)
        reqs_a = [e for e in a if isinstance(e, ScoreRequest)]
        reqs_b = [e for e in b if isinstance(e, ScoreRequest)]
        assert reqs_a != reqs_b

    def test_sorted_by_time(self, stream):
        events = LoadGenerator(stream).schedule(4, 3)
        times = [e.t for e in events]
        assert times == sorted(times)

    def test_one_day_end_per_day_after_its_batches(self, stream):
        cfg = LoadGenConfig(batches_per_day=3)
        events = LoadGenerator(stream, cfg).schedule(4, 2)
        ends = [e for e in events if isinstance(e, DayEnd)]
        assert [e.day for e in ends] == [4, 5]
        for end in ends:
            day_batches = [
                e
                for e in events
                if isinstance(e, TxnBatch) and e.day == end.day
            ]
            assert len(day_batches) == 3
            assert all(b.t <= end.t for b in day_batches)

    def test_batch_counts_sum_to_day_size(self, stream):
        events = LoadGenerator(stream).schedule(4, 2)
        for day in (4, 5):
            total = sum(
                e.count
                for e in events
                if isinstance(e, TxnBatch) and e.day == day
            )
            assert total == stream.window_transactions(day, 1).size

    def test_burst_interval_is_denser(self, stream):
        cfg = LoadGenConfig(
            qps=500.0, burst_factor=6.0, burst_fraction=0.2, seed=3
        )
        events = LoadGenerator(stream, cfg).schedule(4, 1)
        requests = [e for e in events if isinstance(e, ScoreRequest)]
        in_burst = sum(1 for r in requests if r.t < 0.2)
        # Burst rate is 6x over 20% of the day: expected burst share is
        # 1.2/(1.2+0.8) = 60%; a uniform process would put 20% there.
        assert in_burst / len(requests) > 0.4

    def test_rate_scales_request_volume(self, stream):
        low = LoadGenerator(stream, LoadGenConfig(qps=50.0)).schedule(4, 2)
        high = LoadGenerator(stream, LoadGenConfig(qps=500.0)).schedule(4, 2)
        n_low = sum(1 for e in low if isinstance(e, ScoreRequest))
        n_high = sum(1 for e in high if isinstance(e, ScoreRequest))
        assert n_high > 5 * n_low

    def test_users_mix_hot_and_universe(self, stream):
        cfg = LoadGenConfig(
            num_users=1_000_000, hot_fraction=0.5, qps=800.0, seed=1
        )
        events = LoadGenerator(stream, cfg).schedule(4, 2)
        users = [e.user for e in events if isinstance(e, ScoreRequest)]
        hot = sum(1 for u in users if u < stream.config.num_users)
        cold = len(users) - hot
        assert hot > 0 and cold > 0
        # A 600-user hot set inside a 1M universe: cold draws land
        # outside the stream almost surely.
        assert cold / len(users) > 0.3

    def test_schedule_beyond_stream_rejected(self, stream):
        with pytest.raises(ServingError):
            LoadGenerator(stream).schedule(8, 5)
        with pytest.raises(ServingError):
            LoadGenerator(stream).schedule(0, 0)

    def test_expected_qps_blends_burst(self, stream):
        cfg = LoadGenConfig(qps=100.0, burst_factor=4.0, burst_fraction=0.25)
        gen = LoadGenerator(stream, cfg)
        assert gen.expected_qps() == pytest.approx(100.0 * (1.0 + 0.75))
