"""Tests for the asyncio streaming scoring service.

Covers admission control (shed / deadline expiry), scoring semantics
(flagged users, unknown users, empty windows), slide-driven state
versioning, observability output, and the served-vs-batch ``labels_hash``
identity — including the soak run with an injected device fault.
"""

import asyncio
import time

import numpy as np
import pytest

from repro import obs
from repro.errors import ServingError
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)
from repro.resilience import FaultPlan, inject
from repro.serving import (
    DayEnd,
    LoadGenConfig,
    LoadGenerator,
    ScoringService,
    TxnBatch,
    batch_labels_hash,
)
from repro.types import NO_LABEL


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=800,
            num_products=400,
            num_days=12,
            transactions_per_day=400,
            num_rings=3,
            ring_size=6,
            seed=33,
        )
    )


def run(coro):
    return asyncio.run(coro)


def make_service(stream, **kwargs):
    kwargs.setdefault("window_days", 6)
    return ScoringService(stream, **kwargs)


class TestConstruction:
    def test_bad_geometry_rejected(self, stream):
        with pytest.raises(ServingError):
            make_service(stream, window_days=0)
        with pytest.raises(ServingError):
            make_service(stream, window_days=13)
        with pytest.raises(ServingError):
            make_service(stream, start_day=8, window_days=6)

    def test_bad_policy_and_queue_rejected(self, stream):
        with pytest.raises(ServingError):
            make_service(stream, policy="drop-oldest")
        with pytest.raises(ServingError):
            make_service(stream, queue_capacity=0)
        with pytest.raises(ServingError):
            make_service(stream, deadline_seconds=-1.0)

    def test_score_before_start_rejected(self, stream):
        service = make_service(stream)
        with pytest.raises(ServingError):
            service.state


class TestScoring:
    def test_unknown_user_scores_unlabeled(self, stream):
        async def main():
            service = make_service(stream)
            await service.start()
            response = await service.score(10**9)
            await service.stop()
            return response

        response = run(main())
        assert response.outcome == "scored"
        assert response.label == int(NO_LABEL)
        assert response.flagged is False

    def test_flagged_user_scores_flagged(self, stream):
        async def main():
            service = make_service(stream)
            state = await service.start()
            assert state.flagged, "detection found no clusters"
            user = min(state.flagged)
            response = await service.score(user)
            await service.stop()
            return response

        response = run(main())
        assert response.outcome == "scored"
        assert response.flagged is True
        assert response.window_version == 0

    def test_shed_when_queue_full(self, stream):
        async def main():
            service = make_service(stream, queue_capacity=1)
            await service.start()
            # Stop the worker so nothing drains, then fill the queue:
            # the next admission must shed, not block or queue forever.
            await service.stop()
            service._queue.put_nowait(
                (time.perf_counter(), 0, asyncio.get_running_loop().create_future())
            )
            return await service.score(1)

        response = run(main())
        assert response.outcome == "shed"
        assert response.label == int(NO_LABEL)

    def test_zero_deadline_expires_queued_requests(self, stream):
        async def main():
            service = make_service(
                stream, policy="deadline", deadline_seconds=0.0
            )
            await service.start()
            response = await service.score(3)
            await service.stop()
            return response

        response = run(main())
        assert response.outcome == "expired"

    def test_shed_policy_never_expires(self, stream):
        async def main():
            service = make_service(
                stream, policy="shed", deadline_seconds=0.0
            )
            await service.start()
            response = await service.score(3)
            await service.stop()
            return response

        assert run(main()).outcome == "scored"

    def test_score_now_synchronous_lookup(self, stream):
        async def main():
            service = make_service(stream)
            await service.start()
            response = service.score_now(10**9)
            await service.stop()
            return response

        response = run(main())
        assert response.outcome == "scored"
        assert response.label == int(NO_LABEL)


class TestServe:
    @pytest.fixture(scope="class")
    def served(self, stream):
        generator = LoadGenerator(
            stream, LoadGenConfig(qps=250.0, seed=7)
        )
        events = generator.schedule(6, 3)
        service = make_service(stream)
        with obs.observe() as session:
            report = run(service.serve(events))
        return events, service, report, session

    def test_every_request_answered(self, served):
        events, _, report, _ = served
        from repro.serving.loadgen import ScoreRequest

        n_requests = sum(1 for e in events if isinstance(e, ScoreRequest))
        assert report.requests_total == n_requests
        assert (
            report.scored + report.shed + report.expired
            == report.requests_total
        )
        assert report.latency.count == report.requests_total

    def test_slides_advance_window(self, served):
        _, service, report, _ = served
        assert report.slides == 3
        assert service.state.version == 3
        assert service.state.start_day == 3
        assert report.final_window_start_day == 3

    def test_serving_metrics_emitted(self, served):
        _, _, _, session = served
        names = {m["name"] for m in session.metrics.to_dict()["metrics"]}
        assert "serving_requests_total" in names
        assert "serving_request_latency_seconds" in names
        assert "serving_slides_total" in names
        assert "serving_ingest_batches_total" in names

    def test_journal_has_serve_events(self, served):
        _, _, _, session = served
        events = {r["event"] for r in session.journal.events}
        assert "serve.start" in events
        assert "serve.slide" in events
        assert "serve.end" in events

    def test_report_round_trips(self, served):
        _, _, report, _ = served
        doc = report.as_dict()
        assert doc["requests_total"] == report.requests_total
        assert doc["sustained_qps"] > 0
        assert "labels_hash" in report.to_text() or doc["final_labels_hash"]


class TestIdentity:
    def test_served_state_matches_batch_recompute(self, stream):
        """The tentpole invariant: at every probed slide the service's
        incremental label state is bitwise identical to a from-scratch
        non-incremental batch rerun of the same history."""
        generator = LoadGenerator(stream, LoadGenConfig(qps=60.0, seed=2))
        events = generator.schedule(6, 2)
        service = make_service(stream, probe_every=1)
        report = run(service.serve(events))
        assert report.probes == 2
        assert report.probe_mismatches == 0
        assert report.final_labels_hash == batch_labels_hash(
            stream, 0, 6, 2
        )


class TestSoak:
    def test_bursty_load_with_device_fault(self, stream):
        """Soak: bursty load, a device fault injected mid-stream.

        The ladder must degrade the engine (never the answer): the run
        completes, degradations are recorded, SLO verdicts evaluate, and
        the final served labels still match the batch rerun bitwise.
        """
        from repro.obs.slo import evaluate_slos, load_slo_spec

        generator = LoadGenerator(
            stream,
            LoadGenConfig(qps=300.0, burst_factor=5.0, seed=13),
        )
        events = generator.schedule(6, 3)
        service = make_service(stream)
        with obs.observe() as session:
            # Every allocation of every device OOMs: each slide's GPU
            # attempt faults and steps down the degradation ladder.
            with inject(FaultPlan.parse("oom@1x999999")):
                report = run(service.serve(events))
        entries = session.metrics.to_dict()["metrics"]
        degradations = sum(
            e["value"]
            for e in entries
            if e["name"] == "resilience_degradations_total"
        )
        assert degradations >= 1
        assert report.slides == 3
        assert report.scored > 0
        # SLO spec evaluates against the soak metrics; the degradation
        # budget records the injected-fault breach.
        slo = evaluate_slos(
            load_slo_spec("benchmarks/serving_slo.toml"), session.metrics
        )
        verdicts = {v.slo.name: v for v in slo.verdicts}
        assert not verdicts["degradation-budget"].ok
        assert verdicts["serve-identity-budget"].ok
        # Fault-free batch rerun: degraded slides recompute in full, so
        # the served labels are still bitwise identical.
        assert report.final_labels_hash == batch_labels_hash(
            stream, 0, 6, 3
        )

    def test_slide_failure_keeps_serving_old_state(self, stream):
        async def main():
            service = make_service(stream, degrade=False, window_days=6)
            await service.start()
            version0 = service.state.version
            with inject(FaultPlan.parse("oom@1x999999")):
                await service.ingest(TxnBatch(t=0.1, day=6, count=50))
                await service.ingest(DayEnd(t=1.0, day=6))
                await service._ingest_queue.join()
            assert service.state.version == version0
            response = await service.score(3)
            await service.stop()
            return service, response

        with obs.observe() as session:
            service, response = run(main())
        assert response.outcome in ("scored", "expired")
        entries = session.metrics.to_dict()["metrics"]
        failures = sum(
            e["value"]
            for e in entries
            if e["name"] == "serving_slide_failures_total"
        )
        assert failures == 1
