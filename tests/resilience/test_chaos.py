"""Tests for seeded chaos sweeps and their analysis-report currency."""

import pytest

from repro import ClassicLP, GLPEngine
from repro.resilience import FaultPlan, RetryPolicy
from repro.resilience.chaos import (
    ChaosReport,
    ChaosRun,
    chaos_sweep,
)


def sweep(graph, **kwargs):
    kwargs.setdefault("make_engine", GLPEngine)
    kwargs.setdefault("num_plans", 3)
    kwargs.setdefault("max_iterations", 6)
    kwargs.setdefault("stop_on_convergence", False)
    return chaos_sweep(graph, ClassicLP, **kwargs)


class TestChaosSweep:
    def test_engine_sweep_recovers_everything(self, community_graph):
        graph, _ = community_graph
        report = sweep(graph, seed=0)
        assert report.ok
        assert len(report.runs) == 3
        for run in report.runs:
            # Seeded plans are calibrated against the reference event
            # totals, so every plan actually fires and recovers.
            assert run.status == "recovered"
            assert run.faults_fired
            assert run.identical
            assert run.labels_hash == report.reference_hash

    def test_sweep_is_seed_deterministic(self, community_graph):
        graph, _ = community_graph
        a = sweep(graph, seed=11)
        b = sweep(graph, seed=11)
        assert [r.plan for r in a.runs] == [r.plan for r in b.runs]
        assert [r.status for r in a.runs] == [r.status for r in b.runs]
        c = sweep(graph, seed=12)
        assert [r.plan for r in a.runs] != [r.plan for r in c.runs]

    def test_explicit_nonfiring_plan_is_clean(self, two_cliques_graph):
        report = sweep(
            two_cliques_graph,
            plans=[FaultPlan.parse("kernel@999999")],
        )
        assert [r.status for r in report.runs] == ["clean"]

    def test_exhausted_budget_reports_failed(self, two_cliques_graph):
        report = sweep(
            two_cliques_graph,
            plans=[FaultPlan.parse("kernel@2x999999")],
            retry_policy=RetryPolicy(max_retries=1),
        )
        (run,) = report.runs
        assert run.status == "failed"
        assert "KernelAbortFault" in run.error
        assert not report.ok

    def test_ladder_sweep_degrades_on_oom(self, community_graph):
        graph, _ = community_graph
        report = chaos_sweep(
            graph,
            ClassicLP,
            plans=[FaultPlan.parse("oom@2x999999")],
            max_iterations=6,
            stop_on_convergence=False,
        )
        (run,) = report.runs
        assert run.status == "degraded"
        assert run.identical
        assert run.engine != report.reference_engine


class TestChaosAnalysisReport:
    def make_report(self, statuses):
        runs = [
            ChaosRun(plan=f"kernel@{i + 1}", status=status)
            for i, status in enumerate(statuses)
        ]
        return ChaosReport(
            reference_engine="GLP",
            reference_hash="cafe",
            stream_totals={"alloc": 1, "transfer": 1, "launch": 1},
            runs=runs,
        )

    def test_clean_sweep_has_no_findings(self):
        analysis = self.make_report(["clean", "recovered"]).analysis_report()
        assert analysis.source == "chaos"
        assert analysis.checked == 2
        assert not analysis.findings
        assert not analysis.has_hazards

    def test_statuses_map_to_rules(self):
        analysis = self.make_report(
            ["failed", "mismatch", "degraded"]
        ).analysis_report()
        rules = [f.rule for f in analysis.findings]
        assert rules == [
            "chaos-run-failed",
            "chaos-identity-mismatch",
            "chaos-degraded",
        ]
        severities = [f.severity for f in analysis.findings]
        assert severities == ["error", "error", "warning"]
        assert analysis.has_hazards

    def test_report_dict_passes_schema_checker(self, tmp_path):
        import json
        import os
        import subprocess
        import sys

        checker = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir,
            "benchmarks", "check_obs_schema.py",
        )
        analysis = self.make_report(
            ["failed", "degraded", "recovered"]
        ).analysis_report()
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(analysis.as_dict()))
        proc = subprocess.run(
            [sys.executable, checker, "--analysis", str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr


class TestChaosRunDict:
    def test_round_trippable_dict(self):
        run = ChaosRun(
            plan="ecc@3",
            status="recovered",
            engine="GLP",
            labels_hash="beef",
            identical=True,
            faults_fired=("ecc",),
        )
        doc = run.as_dict()
        assert doc["faults_fired"] == ["ecc"]
        assert run.ok
        assert not ChaosRun(plan="x", status="failed").ok
