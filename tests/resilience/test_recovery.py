"""Tests for the RetryPolicy / RecoveryContext bookkeeping."""

import numpy as np
import pytest

from repro import ClassicLP
from repro.errors import (
    EccCorruptionFault,
    InjectedOOMFault,
    ResilienceError,
    TransferFault,
)
from repro.resilience import (
    RecoveryContext,
    RetryPolicy,
    RunCheckpoint,
)


def context_with_checkpoint(graph, policy=None):
    ctx = RecoveryContext("GLP", policy=policy)
    program = ClassicLP()
    labels = np.zeros(graph.num_vertices, dtype=np.int64)
    program.init_state(graph, labels)
    ctx.checkpoint(graph=graph, program=program, iteration=2, labels=labels)
    return ctx


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ResilienceError):
            RetryPolicy(backoff_seconds=-0.1)

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_seconds=0.1, max_backoff_seconds=0.3)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.3)
        assert policy.backoff_for(9) == pytest.approx(0.3)
        assert RetryPolicy().backoff_for(5) == 0.0


class TestForRun:
    def test_disabled_when_no_option_set(self):
        assert RecoveryContext.for_run("GLP") is None

    def test_enabled_by_any_option(self, tmp_path):
        assert RecoveryContext.for_run(
            "GLP", retry_policy=RetryPolicy()
        ) is not None
        assert RecoveryContext.for_run(
            "GLP", checkpoint_dir=str(tmp_path)
        ) is not None


class TestOnFault:
    def test_oom_always_reraises(self, two_cliques_graph):
        ctx = context_with_checkpoint(two_cliques_graph)
        with pytest.raises(InjectedOOMFault):
            ctx.on_fault(InjectedOOMFault("injected"))

    def test_fault_before_first_checkpoint_reraises(self):
        ctx = RecoveryContext("GLP")
        with pytest.raises(TransferFault):
            ctx.on_fault(TransferFault("early"))

    def test_transient_retries_until_budget(self, two_cliques_graph):
        ctx = context_with_checkpoint(
            two_cliques_graph, RetryPolicy(max_retries=2)
        )
        assert ctx.on_fault(TransferFault("a")) is ctx.current
        assert ctx.on_fault(TransferFault("b")) is ctx.current
        with pytest.raises(TransferFault):
            ctx.on_fault(TransferFault("c"))
        assert ctx.retries == 2

    def test_fatal_resumes_on_separate_budget(self, two_cliques_graph):
        ctx = context_with_checkpoint(
            two_cliques_graph, RetryPolicy(max_retries=0, max_resumes=1)
        )
        assert ctx.on_fault(EccCorruptionFault("x")) is ctx.current
        assert ctx.resumes == 1
        with pytest.raises(EccCorruptionFault):
            ctx.on_fault(EccCorruptionFault("y"))

    def test_backoff_accounted(self, two_cliques_graph):
        ctx = context_with_checkpoint(
            two_cliques_graph,
            RetryPolicy(backoff_seconds=0.25, max_backoff_seconds=1.0),
        )
        ctx.on_fault(TransferFault("a"))
        ctx.on_fault(TransferFault("b"))
        assert ctx.backoff_total_seconds == pytest.approx(0.75)

    def test_summary(self, two_cliques_graph):
        ctx = context_with_checkpoint(two_cliques_graph)
        ctx.on_fault(TransferFault("a"))
        summary = ctx.summary()
        assert summary["engine"] == "GLP"
        assert summary["checkpoints"] == 1
        assert summary["retries"] == 1
        assert summary["faults"] == ["transfer"]


class TestResumeResolution:
    def test_resume_from_directory_and_file(self, two_cliques_graph, tmp_path):
        program = ClassicLP()
        labels = np.zeros(two_cliques_graph.num_vertices, dtype=np.int64)
        program.init_state(two_cliques_graph, labels)
        ckpt = RunCheckpoint.capture(
            engine="GLP",
            graph=two_cliques_graph,
            program=program,
            iteration=4,
            labels=labels,
        )
        path = str(tmp_path / "glp.ckpt")
        ckpt.save(path)
        for resume in (str(tmp_path), path):
            ctx = RecoveryContext("GLP", resume_from=resume)
            resolved = ctx.resume_checkpoint(
                graph=two_cliques_graph, program=ClassicLP()
            )
            assert resolved.iteration == 4

    def test_resume_from_empty_directory_raises(self, tmp_path):
        from repro.errors import CheckpointError

        ctx = RecoveryContext("GLP", resume_from=str(tmp_path))
        with pytest.raises(CheckpointError):
            ctx.resume_checkpoint(graph=None, program=None)
