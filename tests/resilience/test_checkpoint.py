"""Tests for BSP-boundary run checkpoints."""

import numpy as np
import pytest

from repro import ClassicLP
from repro.errors import CheckpointError
from repro.resilience import (
    RunCheckpoint,
    checkpoint_path,
    latest_checkpoint,
)


def make_checkpoint(graph, program, iteration=3):
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    program.init_state(graph, labels)
    return RunCheckpoint.capture(
        engine="GLP",
        graph=graph,
        program=program,
        iteration=iteration,
        labels=labels,
        engine_state={"frontier_vertices": np.array([1, 2], dtype=np.int64)},
    )


class TestCapture:
    def test_deep_copies_on_capture(self, two_cliques_graph):
        labels = np.zeros(two_cliques_graph.num_vertices, dtype=np.int64)
        ckpt = RunCheckpoint.capture(
            engine="GLP",
            graph=two_cliques_graph,
            program=ClassicLP(),
            iteration=1,
            labels=labels,
        )
        labels[0] = 99
        assert ckpt.labels[0] == 0

    def test_restore_isolated_from_snapshot(self, two_cliques_graph):
        ckpt = make_checkpoint(two_cliques_graph, ClassicLP())
        restored = ckpt.restored_labels()
        restored[0] = 77
        assert ckpt.labels[0] != 77
        engine_state = ckpt.restored_engine_state()
        engine_state["frontier_vertices"][0] = 55
        assert ckpt.engine_state["frontier_vertices"][0] == 1

    def test_restore_program_resets_state(self, two_cliques_graph):
        program = ClassicLP()
        ckpt = make_checkpoint(two_cliques_graph, program)
        before = dict(program.__dict__)
        program.__dict__["_scribble"] = object()
        ckpt.restore_program(program)
        assert "_scribble" not in program.__dict__
        assert set(program.__dict__) == set(before)


class TestValidate:
    def test_accepts_matching_run(self, two_cliques_graph):
        program = ClassicLP()
        ckpt = make_checkpoint(two_cliques_graph, program)
        ckpt.validate(engine="GLP", graph=two_cliques_graph, program=program)

    def test_rejects_wrong_engine(self, two_cliques_graph):
        ckpt = make_checkpoint(two_cliques_graph, ClassicLP())
        with pytest.raises(CheckpointError):
            ckpt.validate(
                engine="GLP-Hybrid",
                graph=two_cliques_graph,
                program=ClassicLP(),
            )

    def test_rejects_wrong_graph(self, two_cliques_graph, star_graph):
        ckpt = make_checkpoint(two_cliques_graph, ClassicLP())
        with pytest.raises(CheckpointError):
            ckpt.validate(engine="GLP", graph=star_graph, program=ClassicLP())

    def test_rejects_wrong_version(self, two_cliques_graph):
        ckpt = make_checkpoint(two_cliques_graph, ClassicLP())
        ckpt.version = 999
        with pytest.raises(CheckpointError):
            ckpt.validate(
                engine="GLP", graph=two_cliques_graph, program=ClassicLP()
            )


class TestSerialization:
    def test_save_load_roundtrip(self, two_cliques_graph, tmp_path):
        ckpt = make_checkpoint(two_cliques_graph, ClassicLP())
        path = checkpoint_path(str(tmp_path), "GLP")
        ckpt.save(path)
        loaded = RunCheckpoint.load(path)
        assert loaded.iteration == ckpt.iteration
        assert np.array_equal(loaded.labels, ckpt.labels)
        assert np.array_equal(
            loaded.engine_state["frontier_vertices"],
            ckpt.engine_state["frontier_vertices"],
        )

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            RunCheckpoint.load(str(tmp_path / "nope.ckpt"))

    def test_checkpoint_path_slug(self, tmp_path):
        path = checkpoint_path(str(tmp_path), "GLP-2GPU / test")
        assert path.endswith("glp-2gpu---test.ckpt")

    def test_latest_checkpoint(self, two_cliques_graph, tmp_path):
        assert latest_checkpoint(str(tmp_path)) is None
        older = make_checkpoint(two_cliques_graph, ClassicLP(), iteration=2)
        newer = make_checkpoint(two_cliques_graph, ClassicLP(), iteration=5)
        older.save(str(tmp_path / "a.ckpt"))
        newer.save(str(tmp_path / "b.ckpt"))
        import os

        os.utime(str(tmp_path / "a.ckpt"), (1, 1))
        assert latest_checkpoint(str(tmp_path)).iteration == 5
