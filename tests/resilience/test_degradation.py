"""Graceful degradation: run_auto ladder + sliding-window detector."""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine, SeededFraudLP, obs
from repro.baselines.cpu_serial import SerialEngine
from repro.core.hybrid import HybridEngine, device_footprint, run_auto
from repro.errors import OutOfDeviceMemoryError
from repro.graph.generators import planted_partition_graph
from repro.gpusim.config import TITAN_V
from repro.pipeline.detector import ClusterDetector
from repro.pipeline.incremental import SlidingWindowDetector
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)
from repro.resilience import FaultPlan, inject


@pytest.fixture(scope="module")
def graph():
    graph, _ = planted_partition_graph(240, 6, 8.0, 0.9, seed=7)
    return graph


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=800,
            num_products=400,
            num_days=12,
            transactions_per_day=400,
            num_rings=3,
            ring_size=6,
            seed=33,
        )
    )


def degradation_count(session):
    total = 0.0
    for entry in session.metrics.to_dict()["metrics"]:
        if entry["name"] == "resilience_degradations_total":
            total += entry["value"]
    return total


class TestRunAutoLadder:
    def test_oom_steps_down_to_hybrid(self, graph):
        reference = GLPEngine().run(graph, ClassicLP(), max_iterations=8)
        with obs.observe() as session:
            # One injected OOM during GLP residency setup; hybrid's later
            # allocations sit past the one-shot spec and succeed.
            with inject(FaultPlan.parse("oom@2")):
                result, engine = run_auto(
                    graph, ClassicLP(), max_iterations=8
                )
            assert isinstance(engine, HybridEngine)
            assert result.labels_hash() == reference.labels_hash()
            assert degradation_count(session) == 1

    def test_persistent_oom_falls_to_cpu_serial(self, graph):
        reference = GLPEngine().run(graph, ClassicLP(), max_iterations=8)
        with obs.observe() as session:
            with inject(FaultPlan.parse("oom@2x999")):
                result, engine = run_auto(
                    graph, ClassicLP(), max_iterations=8
                )
            assert isinstance(engine, SerialEngine)
            assert result.labels_hash() == reference.labels_hash()
            assert degradation_count(session) == 2

    def test_degrade_false_raises(self, graph):
        with inject(FaultPlan.parse("oom@2")):
            with pytest.raises(OutOfDeviceMemoryError):
                run_auto(
                    graph, ClassicLP(), max_iterations=8, degrade=False
                )


class TestDeviceFootprint:
    def test_frontier_mode_charges_reversed_csr(self, graph):
        dense = device_footprint(graph, ClassicLP())
        sparse = device_footprint(graph, ClassicLP(), frontier="auto")
        assert sparse > dense
        extra = graph.offsets.nbytes + graph.indices.nbytes
        assert sparse == dense + extra + graph.num_vertices

    def test_footprint_matches_engine_residency(self, graph):
        """Regression: the old estimate charged only the label arrays'
        worth on top of the CSR, so a frontier-mode graph that "fit" the
        estimate OOMed inside the engine.  ``device_footprint`` must be
        exactly what the engine allocates."""
        footprint = device_footprint(graph, ClassicLP(), frontier="auto")
        fits = TITAN_V.with_memory(footprint)
        GLPEngine(spec=fits, frontier="auto").run(
            graph, ClassicLP(), max_iterations=2
        )
        with pytest.raises(OutOfDeviceMemoryError):
            GLPEngine(spec=TITAN_V.with_memory(footprint - 1),
                      frontier="auto").run(
                graph, ClassicLP(), max_iterations=2
            )

    def test_run_auto_respects_frontier_residency(self, graph):
        """A device sized to the *dense* footprint must not get the pure
        engine in frontier mode — the old estimate picked it and crashed."""
        dense = device_footprint(graph, ClassicLP())
        spec = TITAN_V.with_memory(int(dense / 0.9) + 64)
        result, engine = run_auto(
            graph, ClassicLP(), spec=spec, frontier="auto",
            max_iterations=6,
        )
        assert isinstance(engine, HybridEngine)
        reference = GLPEngine().run(graph, ClassicLP(), max_iterations=6)
        assert np.array_equal(result.labels, reference.labels)


class TestDetectorDegradation:
    def test_window_sweep_survives_device_oom(self, stream):
        """The acceptance criterion: a window sweep completes under
        injected device OOM by stepping down the ladder, not by raising."""
        detector = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine())
        )
        with obs.observe() as session:
            with inject(FaultPlan.parse("oom@2x999999")):
                window, result = detector.start(0, 6)
                for _ in range(3):
                    window, result = detector.slide()
            assert window.start_day == 3
            assert result.clusters
            assert degradation_count(session) > 0

    def test_degrade_false_propagates(self, stream):
        detector = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine()), degrade=False
        )
        with inject(FaultPlan.parse("oom@2x999999")):
            with pytest.raises(OutOfDeviceMemoryError):
                detector.start(0, 6)

    def test_failed_slide_rolls_back_and_replays(self, stream):
        detector = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine()), degrade=False
        )
        detector.start(0, 6)
        days_before = set(detector.builder.days)
        with obs.observe() as session:
            with inject(FaultPlan.parse("oom@2x999999")):
                with pytest.raises(OutOfDeviceMemoryError):
                    detector.slide()
            # Builder and warm-start state rolled back to the pre-slide
            # snapshot...
            assert set(detector.builder.days) == days_before
            replays = [
                entry["value"]
                for entry in session.metrics.to_dict()["metrics"]
                if entry["name"] == "pipeline_slide_replays_total"
            ]
            assert replays == [1]
        # ... so the same slide replays cleanly once the fault clears.
        window, result = detector.slide()
        assert window.start_day == 1
        assert result.clusters

    def test_degraded_detection_matches_primary(self, stream):
        clean = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine())
        )
        window, result = clean.start(0, 6)

        degraded = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine())
        )
        with inject(FaultPlan.parse("oom@2x999999")):
            dwindow, dresult = degraded.start(0, 6)
        assert np.array_equal(
            result.lp_result.labels, dresult.lp_result.labels
        )
