"""Resume-identity: recovered runs are bitwise identical.

These tests pin down the resilience tentpole's core guarantee — a run
that hit an injected device fault and recovered (in-place retry or
checkpoint resume) finishes with exactly the labels an uninterrupted run
produces, across classic/seeded programs and dense/frontier execution.
"""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine, SeededFraudLP
from repro.core.hybrid import HybridEngine
from repro.core.multigpu import MultiGPUEngine
from repro.errors import KernelAbortFault
from repro.graph.generators import planted_partition_graph
from repro.resilience import (
    FaultPlan,
    RetryPolicy,
    count_events,
    inject,
)
from tests.core.test_hybrid import small_spec_for

SEEDS = {0: 101, 40: 202, 120: 303}


@pytest.fixture(scope="module")
def graph():
    graph, _ = planted_partition_graph(240, 6, 8.0, 0.9, seed=7)
    return graph


def make_program(kind):
    return ClassicLP() if kind == "classic" else SeededFraudLP(dict(SEEDS))


def mid_run_plan(engine, graph, program, kind, **run_kwargs):
    """A plan firing ``kind`` halfway through this workload's stream."""
    with count_events() as counter:
        engine.run(graph, program, **run_kwargs)
    spec_kind = {"transfer": "transfer"}.get(kind, kind)
    stream = "transfer" if kind == "transfer" else "launch"
    total = counter.counts[stream]
    assert total > 1, f"workload has no {stream} events to fault"
    return FaultPlan.parse(f"{spec_kind}@{max(2, total // 2)}")


class TestFaultFreeIdentity:
    def test_recovery_layer_off_vs_on(self, graph):
        bare = GLPEngine().run(graph, ClassicLP(), max_iterations=8)
        guarded = GLPEngine().run(
            graph, ClassicLP(), max_iterations=8,
            retry_policy=RetryPolicy(),
        )
        assert bare.labels_hash() == guarded.labels_hash()
        assert bare.total_seconds == guarded.total_seconds
        assert bare.num_iterations == guarded.num_iterations


class TestRecoveredRunIdentity:
    @pytest.mark.parametrize("program_kind", ["classic", "seeded"])
    @pytest.mark.parametrize("frontier", ["dense", "auto"])
    @pytest.mark.parametrize("fault", ["transfer", "kernel", "ecc"])
    def test_glp_identity(self, graph, program_kind, frontier, fault):
        kwargs = dict(max_iterations=8, stop_on_convergence=False)
        reference = GLPEngine(frontier=frontier).run(
            graph, make_program(program_kind), **kwargs
        )
        plan = mid_run_plan(
            GLPEngine(frontier=frontier), graph,
            make_program(program_kind), fault, **kwargs
        )
        with inject(plan) as injector:
            recovered = GLPEngine(frontier=frontier).run(
                graph, make_program(program_kind),
                retry_policy=RetryPolicy(), **kwargs
            )
        assert len(injector.events) == 1
        assert recovered.labels_hash() == reference.labels_hash()
        assert recovered.num_iterations == reference.num_iterations

    def test_glp_recovery_history_not_duplicated(self, graph):
        kwargs = dict(
            max_iterations=8, stop_on_convergence=False,
            record_history=True,
        )
        reference = GLPEngine().run(graph, ClassicLP(), **kwargs)
        plan = mid_run_plan(
            GLPEngine(), graph, ClassicLP(), "kernel", **kwargs
        )
        with inject(plan):
            recovered = GLPEngine().run(
                graph, ClassicLP(), retry_policy=RetryPolicy(), **kwargs
            )
        assert len(recovered.iterations) == len(reference.iterations)
        assert len(recovered.history) == len(reference.history)
        for ref, rec in zip(reference.history, recovered.history):
            assert np.array_equal(ref, rec)

    def test_hybrid_identity(self, graph):
        spec = small_spec_for(graph, 0.5)
        kwargs = dict(max_iterations=8, stop_on_convergence=False)
        reference = HybridEngine(spec=spec).run(
            graph, ClassicLP(), **kwargs
        )
        plan = mid_run_plan(
            HybridEngine(spec=spec), graph, ClassicLP(), "kernel", **kwargs
        )
        with inject(plan) as injector:
            engine = HybridEngine(spec=spec)
            recovered = engine.run(
                graph, ClassicLP(), retry_policy=RetryPolicy(), **kwargs
            )
        assert len(injector.events) == 1
        assert recovered.labels_hash() == reference.labels_hash()
        # Retry-safe accounting: totals recomputed from surviving
        # iterations, never double-counted across attempts.
        stats = engine.last_stats
        assert stats.elapsed_seconds == pytest.approx(
            sum(s.seconds for s in recovered.iterations)
        )

    def test_multigpu_identity(self, graph):
        kwargs = dict(max_iterations=8, stop_on_convergence=False)
        reference = MultiGPUEngine(2).run(graph, ClassicLP(), **kwargs)
        plan = mid_run_plan(
            MultiGPUEngine(2), graph, ClassicLP(), "kernel", **kwargs
        )
        with inject(plan) as injector:
            recovered = MultiGPUEngine(2).run(
                graph, ClassicLP(), retry_policy=RetryPolicy(), **kwargs
            )
        assert len(injector.events) == 1
        assert recovered.labels_hash() == reference.labels_hash()


class TestCheckpointResume:
    def test_exhausted_retries_leave_resumable_checkpoint(
        self, graph, tmp_path
    ):
        kwargs = dict(max_iterations=8, stop_on_convergence=False)
        reference = GLPEngine().run(graph, ClassicLP(), **kwargs)

        # A persistent kernel fault (repeat far past the retry budget)
        # kills the run mid-flight, like a pulled power cord.
        with inject(FaultPlan.parse("kernel@12x99")):
            with pytest.raises(KernelAbortFault):
                GLPEngine().run(
                    graph, ClassicLP(),
                    retry_policy=RetryPolicy(max_retries=2),
                    checkpoint_dir=str(tmp_path),
                    **kwargs,
                )
        assert list(tmp_path.glob("*.ckpt")), "no checkpoint persisted"

        resumed = GLPEngine().run(
            graph, ClassicLP(), resume_from=str(tmp_path), **kwargs
        )
        assert resumed.labels_hash() == reference.labels_hash()

    def test_resume_skips_completed_iterations(self, graph, tmp_path):
        kwargs = dict(max_iterations=8, stop_on_convergence=False)
        with inject(FaultPlan.parse("kernel@12x99")):
            with pytest.raises(KernelAbortFault):
                GLPEngine().run(
                    graph, ClassicLP(),
                    retry_policy=RetryPolicy(max_retries=0),
                    checkpoint_dir=str(tmp_path),
                    **kwargs,
                )
        resumed = GLPEngine().run(
            graph, ClassicLP(), resume_from=str(tmp_path), **kwargs
        )
        # The resumed run re-executes only from the checkpointed
        # iteration; its stats list is the tail, not all 8 rounds.
        assert resumed.num_iterations < 8
        assert resumed.iterations[0].iteration > 1
