"""Tests for the deterministic fault-injection layer."""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine
from repro.errors import (
    DeviceFault,
    EccCorruptionFault,
    InjectedOOMFault,
    KernelAbortFault,
    OutOfDeviceMemoryError,
    ResilienceError,
    TransferFault,
)
from repro.gpusim import hooks
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    count_events,
    inject,
)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ResilienceError):
            FaultSpec(kind="meteor", at=1)
        with pytest.raises(ResilienceError):
            FaultSpec(kind="oom", at=0)
        with pytest.raises(ResilienceError):
            FaultSpec(kind="oom", at=1, repeat=0)

    def test_covers_window(self):
        spec = FaultSpec(kind="kernel", at=3, repeat=2)
        assert not spec.covers(2)
        assert spec.covers(3)
        assert spec.covers(4)
        assert not spec.covers(5)

    def test_streams(self):
        assert FaultSpec(kind="oom", at=1).stream == "alloc"
        assert FaultSpec(kind="transfer", at=1).stream == "transfer"
        assert FaultSpec(kind="kernel", at=1).stream == "launch"
        assert FaultSpec(kind="ecc", at=1).stream == "launch"


class TestFaultPlanParse:
    def test_roundtrip(self):
        text = "oom@2,kernel@7x4,ecc@5/dev1"
        plan = FaultPlan.parse(text)
        assert plan.render() == text
        assert plan.specs[1].repeat == 4
        assert plan.specs[2].device == 1

    @pytest.mark.parametrize(
        "bad", ["", "kernel", "kernel@x", "ecc@5/gpu1", "meteor@3"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ResilienceError):
            FaultPlan.parse(bad)

    def test_random_is_seed_deterministic(self):
        totals = {"alloc": 10, "transfer": 20, "launch": 30}
        a = FaultPlan.random(42, num_faults=3, stream_totals=totals)
        b = FaultPlan.random(42, num_faults=3, stream_totals=totals)
        assert a.render() == b.render()
        c = FaultPlan.random(43, num_faults=3, stream_totals=totals)
        assert a.render() != c.render()

    def test_random_skips_empty_streams(self):
        plan = FaultPlan.random(
            0,
            num_faults=4,
            kinds=("transfer", "kernel"),
            stream_totals={"alloc": 5, "transfer": 0, "launch": 9},
        )
        assert all(spec.kind == "kernel" for spec in plan.specs)
        with pytest.raises(ResilienceError):
            FaultPlan.random(
                0, stream_totals={"alloc": 0, "transfer": 0, "launch": 0}
            )


class TestInjection:
    def test_typed_exceptions(self, two_cliques_graph):
        cases = [
            ("oom@1", InjectedOOMFault),
            ("transfer@1", TransferFault),
            ("kernel@1", KernelAbortFault),
            ("ecc@1", EccCorruptionFault),
        ]
        for text, exc_class in cases:
            with inject(FaultPlan.parse(text)) as injector:
                with pytest.raises(exc_class):
                    GLPEngine().run(
                        two_cliques_graph, ClassicLP(), max_iterations=4
                    )
            assert [e.kind for e in injector.events] == [text.split("@")[0]]

    def test_injected_oom_is_both_oom_and_fault(self):
        # The ladder catches it as OOM; the recovery layer refuses to
        # retry it in place for the same reason.
        assert issubclass(InjectedOOMFault, OutOfDeviceMemoryError)
        assert issubclass(InjectedOOMFault, DeviceFault)

    def test_same_plan_same_workload_fires_identically(self, two_cliques_graph):
        def run_once():
            with inject(FaultPlan.parse("kernel@5")) as injector:
                with pytest.raises(KernelAbortFault):
                    GLPEngine().run(
                        two_cliques_graph, ClassicLP(), max_iterations=4
                    )
            return [(e.kind, e.stream, e.index) for e in injector.events]

        assert run_once() == run_once()

    def test_spec_past_event_count_never_fires(self, two_cliques_graph):
        with inject(FaultPlan.parse("kernel@100000")) as injector:
            GLPEngine().run(two_cliques_graph, ClassicLP(), max_iterations=4)
        assert injector.events == []

    def test_installation_is_scoped(self, two_cliques_graph):
        assert hooks.faults() is None
        with inject(FaultPlan.parse("kernel@1")):
            assert hooks.faults() is not None
        assert hooks.faults() is None

    def test_count_events_sees_all_streams(self, community_graph):
        graph, _ = community_graph
        with count_events() as counter:
            GLPEngine().run(graph, ClassicLP(), max_iterations=4)
        assert counter.counts["alloc"] >= 4
        assert counter.counts["transfer"] >= 3
        assert counter.counts["launch"] > 0


class TestZeroPerturbation:
    def test_counting_changes_nothing(self, community_graph):
        """The observer layer must not perturb labels or modeled timing."""
        graph, _ = community_graph
        bare = GLPEngine().run(
            graph, ClassicLP(), max_iterations=6, stop_on_convergence=False
        )
        with count_events():
            observed = GLPEngine().run(
                graph, ClassicLP(), max_iterations=6,
                stop_on_convergence=False,
            )
        assert np.array_equal(bare.labels, observed.labels)
        assert bare.total_seconds == observed.total_seconds

    def test_non_firing_plan_changes_nothing(self, community_graph):
        graph, _ = community_graph
        bare = GLPEngine().run(
            graph, ClassicLP(), max_iterations=6, stop_on_convergence=False
        )
        with inject(FaultPlan.parse("ecc@99999")):
            injected = GLPEngine().run(
                graph, ClassicLP(), max_iterations=6,
                stop_on_convergence=False,
            )
        assert np.array_equal(bare.labels, injected.labels)
        assert bare.total_seconds == injected.total_seconds
