"""Tests for the CPU baseline engines."""

import numpy as np
import pytest

from repro import ClassicLP, LayeredLP, SpeakerListenerLP
from repro.baselines import (
    LigraEngine,
    OMPEngine,
    SerialEngine,
    TigerGraphEngine,
)
from repro.baselines.cpumodel import CPUSpec, XEON_W2133
from repro.errors import ProgramError

CPU_ENGINES = [SerialEngine, OMPEngine, LigraEngine]


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("engine_cls", CPU_ENGINES + [TigerGraphEngine])
    def test_classic_lp_agreement(self, powerlaw_graph, engine_cls):
        reference = SerialEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=10,
            stop_on_convergence=False,
        )
        result = engine_cls().run(
            powerlaw_graph, ClassicLP(), max_iterations=10,
            stop_on_convergence=False,
        )
        assert np.array_equal(result.labels, reference.labels)

    @pytest.mark.parametrize("engine_cls", CPU_ENGINES)
    def test_llp_agreement(self, community_graph, engine_cls):
        graph, _ = community_graph
        reference = SerialEngine().run(
            graph, LayeredLP(gamma=2.0), max_iterations=8,
            stop_on_convergence=False,
        )
        result = engine_cls().run(
            graph, LayeredLP(gamma=2.0), max_iterations=8,
            stop_on_convergence=False,
        )
        assert np.array_equal(result.labels, reference.labels)

    @pytest.mark.parametrize("engine_cls", CPU_ENGINES)
    def test_slp_agreement(self, community_graph, engine_cls):
        graph, _ = community_graph
        reference = SerialEngine().run(
            graph, SpeakerListenerLP(seed=4), max_iterations=6,
            stop_on_convergence=False,
        )
        result = engine_cls().run(
            graph, SpeakerListenerLP(seed=4), max_iterations=6,
            stop_on_convergence=False,
        )
        assert np.array_equal(result.labels, reference.labels)


class TestTimingModels:
    def test_omp_faster_than_serial(self, powerlaw_graph):
        serial = SerialEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=5,
            stop_on_convergence=False,
        )
        omp = OMPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=5,
            stop_on_convergence=False,
        )
        assert omp.total_seconds < serial.total_seconds

    def test_tg_slower_than_omp(self, powerlaw_graph):
        """Figure 4: TG trails OMP and Ligra."""
        omp = OMPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=5,
            stop_on_convergence=False,
        )
        tg = TigerGraphEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=5,
            stop_on_convergence=False,
        )
        assert tg.total_seconds > omp.total_seconds

    def test_time_scales_with_edges(self):
        from repro.graph.generators.rmat import rmat_graph

        small = rmat_graph(8, 4.0, seed=1)
        large = rmat_graph(10, 4.0, seed=1)
        t_small = OMPEngine().run(
            small, ClassicLP(), max_iterations=3, stop_on_convergence=False
        ).total_seconds
        t_large = OMPEngine().run(
            large, ClassicLP(), max_iterations=3, stop_on_convergence=False
        ).total_seconds
        assert t_large > 2 * t_small

    def test_custom_spec_respected(self, powerlaw_graph):
        slow = CPUSpec(
            edges_per_core_per_second=XEON_W2133.edges_per_core_per_second
            / 10
        )
        fast = OMPEngine(XEON_W2133).run(
            powerlaw_graph, ClassicLP(), max_iterations=3,
            stop_on_convergence=False,
        )
        slowed = OMPEngine(slow).run(
            powerlaw_graph, ClassicLP(), max_iterations=3,
            stop_on_convergence=False,
        )
        assert slowed.total_seconds > 5 * fast.total_seconds


class TestLigraFrontier:
    def test_frontier_sparsifies_late_iterations(self, community_graph):
        """Once labels settle, Ligra's active set (and hence modeled time)
        collapses for frontier-safe programs."""
        graph, _ = community_graph
        result = LigraEngine().run(
            graph, ClassicLP(), max_iterations=20, stop_on_convergence=False
        )
        first = result.iterations[0].seconds
        last = result.iterations[-1].seconds
        assert last < first

    def test_dense_mode_for_unsafe_programs(self, community_graph):
        """LLP's global volumes force dense iterations (no sparsification
        advantage)."""
        graph, _ = community_graph
        llp = LigraEngine().run(
            graph, LayeredLP(gamma=1.0), max_iterations=6,
            stop_on_convergence=False,
        )
        omp = OMPEngine().run(
            graph, LayeredLP(gamma=1.0), max_iterations=6,
            stop_on_convergence=False,
        )
        # Similar (dense) per-iteration cost: within 2x of OMP.
        ratio = llp.seconds_per_iteration / omp.seconds_per_iteration
        assert 0.5 < ratio < 2.0


class TestTigerGraphRestrictions:
    def test_rejects_non_classic(self, powerlaw_graph):
        with pytest.raises(ProgramError, match="classic"):
            TigerGraphEngine().run(
                powerlaw_graph, LayeredLP(gamma=1.0), max_iterations=2
            )
