"""Tests for the block-asynchronous reference engine."""

import numpy as np
import pytest

from repro import ClassicLP
from repro.baselines.cpu_serial import BlockAsyncSerialEngine, SerialEngine
from repro.errors import ConvergenceError
from repro.graph.builder import GraphBuilder


def bipartite_path():
    """A 2-path: synchronous LP oscillates, asynchronous LP settles."""
    builder = GraphBuilder(num_vertices=2)
    builder.add_edge(0, 1)
    return builder.build(symmetrize=True)


class TestBlockAsync:
    def test_single_block_equals_synchronous_first_sweep(self, two_cliques_graph):
        """With one block the async engine's sweep reads only pre-sweep
        labels for its first (and only) block start — but within the block
        it is still one vectorized synchronous step, matching SerialEngine
        exactly."""
        sync = SerialEngine().run(
            two_cliques_graph, ClassicLP(), max_iterations=1,
            stop_on_convergence=False,
        )
        async_one = BlockAsyncSerialEngine(num_blocks=1).run(
            two_cliques_graph, ClassicLP(), max_iterations=1,
            stop_on_convergence=False,
        )
        assert np.array_equal(sync.labels, async_one.labels)

    def test_async_resolves_bipartite_oscillation(self):
        graph = bipartite_path()
        sync = SerialEngine().run(
            graph, ClassicLP(), max_iterations=9, stop_on_convergence=False
        )
        # Synchronous: the two vertices swap labels forever.
        assert not sync.converged
        async_engine = BlockAsyncSerialEngine(num_blocks=2)
        result = async_engine.run(graph, ClassicLP(), max_iterations=9)
        assert result.converged
        assert np.unique(result.labels).size == 1

    def test_converges_at_least_as_fast(self, community_graph):
        graph, _ = community_graph
        sync = SerialEngine().run(graph, ClassicLP(), max_iterations=40)
        async_result = BlockAsyncSerialEngine(num_blocks=8).run(
            graph, ClassicLP(), max_iterations=40
        )
        assert async_result.converged
        assert async_result.num_iterations <= sync.num_iterations + 2

    def test_same_community_quality(self, community_graph):
        graph, truth = community_graph
        result = BlockAsyncSerialEngine(num_blocks=8).run(
            graph, ClassicLP(), max_iterations=30
        )
        correct = 0
        for label in np.unique(result.labels):
            members = truth[result.labels == label]
            correct += np.bincount(members).max()
        assert correct / graph.num_vertices > 0.9

    def test_invalid_blocks(self):
        with pytest.raises(ConvergenceError):
            BlockAsyncSerialEngine(num_blocks=0)

    def test_history_recorded(self, two_cliques_graph):
        result = BlockAsyncSerialEngine(num_blocks=4).run(
            two_cliques_graph, ClassicLP(), max_iterations=3,
            record_history=True, stop_on_convergence=False,
        )
        assert len(result.history) == 3
