"""Tests for the in-house distributed cluster simulator."""

import numpy as np
import pytest

from repro import ClassicLP
from repro.baselines import InHouseDistributedEngine, SerialEngine
from repro.baselines.distributed import ClusterSpec, TAOBAO_CLUSTER


class TestCorrectness:
    def test_matches_serial(self, powerlaw_graph):
        reference = SerialEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=8,
            stop_on_convergence=False,
        )
        result = InHouseDistributedEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=8,
            stop_on_convergence=False,
        )
        assert np.array_equal(result.labels, reference.labels)

    def test_engine_name(self, two_cliques_graph):
        result = InHouseDistributedEngine().run(
            two_cliques_graph, ClassicLP(), max_iterations=2
        )
        assert result.engine == "InHouse-Distributed"


class TestCostModel:
    def test_network_dominates_compute(self, powerlaw_graph):
        """The cluster's defining weakness: per-edge messages through NICs
        cost more than the local compute."""
        engine = InHouseDistributedEngine()
        seconds = engine._iteration_seconds(
            powerlaw_graph,
            active_edges=powerlaw_graph.num_edges,
            active_vertices=powerlaw_graph.num_vertices,
        )
        cluster = engine.cluster
        machine = cluster.machine
        part_edges, boundary = engine._partition_profile(powerlaw_graph)
        compute = part_edges.max() / (
            machine.edges_per_core_per_second * machine.num_cores * 1.2
        )
        assert seconds > 2 * compute

    def test_barrier_floor(self):
        from repro.graph.csr import CSRGraph

        empty = CSRGraph(
            offsets=np.zeros(3, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
        )
        engine = InHouseDistributedEngine()
        seconds = engine._iteration_seconds(
            empty, active_edges=0, active_vertices=2
        )
        assert seconds >= engine.cluster.barrier_seconds

    def test_bigger_cluster_not_proportionally_faster(self, powerlaw_graph):
        """Adding machines shrinks compute but the per-machine NIC share of
        a skewed shuffle doesn't vanish — the scaling wall that motivates
        the single-GPU solution."""
        small = InHouseDistributedEngine(ClusterSpec(num_machines=8))
        large = InHouseDistributedEngine(ClusterSpec(num_machines=64))
        t_small = small._iteration_seconds(
            powerlaw_graph,
            active_edges=powerlaw_graph.num_edges,
            active_vertices=powerlaw_graph.num_vertices,
        )
        t_large = large._iteration_seconds(
            powerlaw_graph,
            active_edges=powerlaw_graph.num_edges,
            active_vertices=powerlaw_graph.num_vertices,
        )
        assert t_large < t_small  # more machines do help...
        assert t_large > t_small / 8  # ...but far from linearly

    def test_activity_scales_cost(self, powerlaw_graph):
        engine = InHouseDistributedEngine()
        full = engine._iteration_seconds(
            powerlaw_graph,
            active_edges=powerlaw_graph.num_edges,
            active_vertices=powerlaw_graph.num_vertices,
        )
        tenth = engine._iteration_seconds(
            powerlaw_graph,
            active_edges=powerlaw_graph.num_edges // 10,
            active_vertices=powerlaw_graph.num_vertices,
        )
        assert tenth < full

    def test_spec_totals(self):
        assert TAOBAO_CLUSTER.num_machines == 32
        assert TAOBAO_CLUSTER.total_cores == 32 * 96
