"""Tests for the G-Sort and G-Hash GPU baselines."""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine, LayeredLP, SpeakerListenerLP
from repro.baselines import GHashEngine, GSortEngine


class TestAgreement:
    @pytest.mark.parametrize("engine_cls", [GSortEngine, GHashEngine])
    def test_classic_lp(self, powerlaw_graph, engine_cls):
        reference = GLPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=8,
            stop_on_convergence=False,
        )
        result = engine_cls().run(
            powerlaw_graph, ClassicLP(), max_iterations=8,
            stop_on_convergence=False,
        )
        assert np.array_equal(result.labels, reference.labels)

    @pytest.mark.parametrize("engine_cls", [GSortEngine, GHashEngine])
    def test_extended_variants(self, community_graph, engine_cls):
        """Like the paper, the baselines are extended to run LLP and SLP."""
        graph, _ = community_graph
        for program_factory in (
            lambda: LayeredLP(gamma=2.0),
            lambda: SpeakerListenerLP(seed=2),
        ):
            reference = GLPEngine().run(
                graph, program_factory(), max_iterations=5,
                stop_on_convergence=False,
            )
            result = engine_cls().run(
                graph, program_factory(), max_iterations=5,
                stop_on_convergence=False,
            )
            assert np.array_equal(result.labels, reference.labels)


class TestPerformanceShape:
    def test_glp_beats_both_baselines(self, powerlaw_graph):
        times = {}
        for engine_cls in (GLPEngine, GSortEngine, GHashEngine):
            result = engine_cls().run(
                powerlaw_graph, ClassicLP(), max_iterations=8,
                stop_on_convergence=False,
            )
            times[engine_cls.__name__] = result.seconds_per_iteration
        assert times["GLPEngine"] < times["GSortEngine"]
        assert times["GLPEngine"] < times["GHashEngine"]

    def test_engine_names_in_results(self, two_cliques_graph):
        gsort = GSortEngine().run(
            two_cliques_graph, ClassicLP(), max_iterations=2
        )
        ghash = GHashEngine().run(
            two_cliques_graph, ClassicLP(), max_iterations=2
        )
        assert gsort.engine == "G-Sort"
        assert ghash.engine == "G-Hash"

    def test_gsort_uses_sort_kernels(self, powerlaw_graph):
        engine = GSortEngine()
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=2,
                   stop_on_convergence=False)
        names = {record.name for record in engine.device.timeline}
        assert "gsort-segsort" in names
        assert "gsort-gather" in names

    def test_ghash_uses_global_kernel_only(self, powerlaw_graph):
        engine = GHashEngine()
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=2,
                   stop_on_convergence=False)
        kernel_names = {
            record.name
            for record in engine.device.timeline
            if record.name not in ("pick-label", "update-vertex")
        }
        assert kernel_names == {"global-hash"}
