"""Tests for DynLP-style incremental slide planning and serving.

Covers ``repro.pipeline.dynlp`` (packed pair keys, window diffs, the
affected-vertex computation, slide planning) and the incremental mode of
:class:`~repro.pipeline.incremental.SlidingWindowDetector` — including
the bitwise incremental-vs-full identity and the rule that a degraded
slide recomputes in full rather than serving stale labels.
"""

import types

import numpy as np
import pytest

from repro import GLPEngine, obs
from repro.errors import PipelineError
from repro.pipeline.detector import ClusterDetector
from repro.pipeline.dynlp import (
    MAX_PACKED_USERS,
    PRODUCT_MASK,
    WindowDiff,
    affected_vertices,
    compute_window_diff,
    diff_endpoint_vertices,
    map_previous_vertices,
    pack_pairs,
    plan_slide,
    unpack_pairs,
)
from repro.pipeline.incremental import (
    IncrementalWindowBuilder,
    SlidingWindowDetector,
)
from repro.pipeline.seeds import SeedStore
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)
from repro.resilience import FaultPlan, inject


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=800,
            num_products=400,
            num_days=12,
            transactions_per_day=400,
            num_rings=3,
            ring_size=6,
            seed=33,
        )
    )


@pytest.fixture(scope="module")
def slide_fixture(stream):
    """(previous window, slide diff, current window) over days 0..8."""
    builder = IncrementalWindowBuilder(stream)
    for day in range(8):
        builder.add_day(day)
    previous = builder.build()
    diff = builder.slide()
    current = builder.build()
    return previous, diff, current


def processed_edges(detection):
    return sum(s.processed_edges for s in detection.lp_result.iterations)


class TestPackPairs:
    def test_roundtrip(self):
        users = np.array([0, 3, 3, 2**30], dtype=np.int64)
        products = np.array([5, 0, 7, PRODUCT_MASK], dtype=np.int64)
        unpacked_users, unpacked_products = unpack_pairs(
            pack_pairs(users, products)
        )
        assert np.array_equal(unpacked_users, users)
        assert np.array_equal(unpacked_products, products)

    def test_user_overflow_rejected(self):
        with pytest.raises(PipelineError):
            pack_pairs(
                np.array([MAX_PACKED_USERS]), np.array([0])
            )

    def test_largest_valid_user_stays_positive(self):
        # The guard exists because ids past the limit shift into the
        # int64 sign bit; the largest admissible id must not.
        keys = pack_pairs(
            np.array([MAX_PACKED_USERS - 1]), np.array([1])
        )
        assert int(keys[0]) > 0
        users, products = unpack_pairs(keys)
        assert int(users[0]) == MAX_PACKED_USERS - 1
        assert int(products[0]) == 1

    def test_product_overflow_rejected(self):
        with pytest.raises(PipelineError):
            pack_pairs(np.array([0]), np.array([PRODUCT_MASK + 1]))


class TestComputeWindowDiff:
    @staticmethod
    def _tables(counts):
        keys = np.array(sorted(counts), dtype=np.int64)
        values = np.array(
            [counts[k] for k in sorted(counts)], dtype=np.float64
        )
        return keys, values

    def test_matches_dict_reference(self):
        before = {key: 1.0 for key in range(0, 100, 2)}
        after = dict(before)
        for key in range(0, 20, 2):  # removed
            del after[key]
        for key in range(1, 21, 2):  # added
            after[key] = 2.0
        for key in range(20, 40, 2):  # reweighted
            after[key] = 3.0

        diff = compute_window_diff(
            *self._tables(before), *self._tables(after)
        )
        assert set(diff.added_keys.tolist()) == set(after) - set(before)
        assert set(diff.removed_keys.tolist()) == set(before) - set(after)
        assert set(diff.reweighted_keys.tolist()) == {
            key
            for key in set(before) & set(after)
            if before[key] != after[key]
        }
        assert diff.num_pairs_before == len(before)
        assert diff.num_pairs_after == len(after)
        assert diff.num_changed == 30

    def test_identical_tables_empty_diff(self):
        counts = {key: float(key % 3 + 1) for key in range(50)}
        diff = compute_window_diff(
            *self._tables(counts), *self._tables(counts)
        )
        assert diff.num_changed == 0
        assert diff.change_ratio == 0.0

    def test_change_ratio_of_emptied_window(self):
        diff = WindowDiff(
            added_keys=np.empty(0, dtype=np.int64),
            removed_keys=np.array([1, 2], dtype=np.int64),
            reweighted_keys=np.empty(0, dtype=np.int64),
            num_pairs_before=2,
            num_pairs_after=0,
        )
        assert diff.change_ratio == 1.0


class TestBuilderDiff:
    def test_slide_diff_matches_dict_reference(self, stream):
        def reference(start, num_days):
            counts = {}
            txns = stream.window_transactions(start, num_days)
            for user, product in zip(txns["user"], txns["product"]):
                key = (int(user) << 32) | int(product)
                counts[key] = counts.get(key, 0) + 1
            return counts

        builder = IncrementalWindowBuilder(stream)
        for day in range(5):
            builder.add_day(day)
        diff = builder.slide()
        before, after = reference(0, 5), reference(1, 5)
        assert set(diff.added_keys.tolist()) == set(after) - set(before)
        assert set(diff.removed_keys.tolist()) == set(before) - set(after)
        assert set(diff.reweighted_keys.tolist()) == {
            key
            for key in set(before) & set(after)
            if before[key] != after[key]
        }
        assert builder.last_diff is diff

    def test_snapshot_restores_last_diff(self, stream):
        builder = IncrementalWindowBuilder(stream)
        for day in range(3):
            builder.add_day(day)
        first = builder.slide()
        snapshot = builder.snapshot()
        builder.slide()
        assert builder.last_diff is not first
        builder.restore(snapshot)
        assert builder.last_diff is first


class TestBuilderOverflowGuard:
    """Regression: user ids at or past ``MAX_PACKED_USERS`` shift into the
    packed int64 key's sign bit and wrap, silently merging distinct
    (user, product) pairs.  The builder must refuse such streams up
    front."""

    @staticmethod
    def _stub(num_users, num_products=10):
        config = types.SimpleNamespace(
            num_users=num_users, num_products=num_products
        )
        return types.SimpleNamespace(config=config)

    def test_oversized_user_space_rejected(self):
        with pytest.raises(PipelineError, match="packed"):
            IncrementalWindowBuilder(self._stub(MAX_PACKED_USERS + 1))

    def test_boundary_user_space_accepted(self):
        # Ids are < num_users, so num_users == MAX_PACKED_USERS is the
        # largest stream the packing can carry.
        builder = IncrementalWindowBuilder(self._stub(MAX_PACKED_USERS))
        assert builder.num_pairs == 0

    def test_oversized_product_space_rejected(self):
        with pytest.raises(PipelineError):
            IncrementalWindowBuilder(self._stub(10, PRODUCT_MASK + 1))


class TestAffectedSet:
    def test_map_empty_input(self, slide_fixture):
        previous, _, current = slide_fixture
        mapped = map_previous_vertices(
            np.empty(0, dtype=np.int64), previous, current
        )
        assert mapped.size == 0

    def test_map_preserves_global_ids(self, slide_fixture):
        previous, _, current = slide_fixture
        vertices = np.array([0, previous.num_users], dtype=np.int64)
        prev_globals = {
            int(previous.users[0]),
            int(previous.products[0]),
        }
        mapped = map_previous_vertices(vertices, previous, current)
        got = set()
        for vertex in mapped:
            if vertex < current.num_users:
                got.add(int(current.users[vertex]))
            else:
                got.add(int(current.products[vertex - current.num_users]))
        assert got <= prev_globals

    def test_diff_endpoints_in_range(self, slide_fixture):
        _, diff, current = slide_fixture
        endpoints = diff_endpoint_vertices(diff, current)
        assert endpoints.size > 0
        assert endpoints.min() >= 0
        assert endpoints.max() < current.graph.num_vertices
        users, _ = diff.endpoint_ids()
        got_users = {
            int(current.users[v])
            for v in endpoints
            if v < current.num_users
        }
        assert got_users <= set(users.tolist())

    def test_frontier_subset_and_disjoint_from_labels(
        self, slide_fixture, stream
    ):
        previous, diff, current = slide_fixture
        seeds = SeedStore(stream.blacklist()).window_seeds(current)
        labeled = np.array(sorted(seeds), dtype=np.int64)
        affected = affected_vertices(
            diff,
            previous,
            current,
            residual_frontier=np.arange(
                previous.graph.num_vertices, dtype=np.int64
            ),
            labeled_vertices=labeled,
        )
        assert np.all(np.isin(affected.frontier, affected.candidates))
        assert np.intersect1d(affected.frontier, labeled).size == 0
        assert affected.num_affected <= affected.num_candidates

    def test_no_labels_means_empty_frontier(self, slide_fixture):
        previous, diff, current = slide_fixture
        affected = affected_vertices(
            diff,
            previous,
            current,
            residual_frontier=np.arange(10, dtype=np.int64),
            labeled_vertices=np.empty(0, dtype=np.int64),
        )
        assert affected.num_affected == 0


class TestPlanSlide:
    @staticmethod
    def _seeds(stream, current):
        return SeedStore(stream.blacklist()).window_seeds(current)

    def test_unsupported_engine_falls_back(self, slide_fixture, stream):
        previous, diff, current = slide_fixture
        plan = plan_slide(
            diff,
            previous,
            current,
            residual_frontier=np.arange(10, dtype=np.int64),
            seeds=self._seeds(stream, current),
            engine_supported=False,
        )
        assert plan.mode == "full"
        assert plan.reason == "unsupported-engine"
        assert not plan.incremental

    def test_missing_residual_falls_back(self, slide_fixture, stream):
        previous, diff, current = slide_fixture
        plan = plan_slide(
            diff,
            previous,
            current,
            residual_frontier=None,
            seeds=self._seeds(stream, current),
        )
        assert plan.reason == "no-residual"

    def test_cutover_zero_forces_full(self, slide_fixture, stream):
        previous, diff, current = slide_fixture
        plan = plan_slide(
            diff,
            previous,
            current,
            residual_frontier=np.arange(
                previous.graph.num_vertices, dtype=np.int64
            ),
            seeds=self._seeds(stream, current),
            cutover_ratio=0.0,
        )
        assert plan.mode == "full"
        assert plan.reason == "cutover"
        assert plan.num_affected > 0

    def test_permissive_cutover_goes_incremental(
        self, slide_fixture, stream
    ):
        previous, diff, current = slide_fixture
        plan = plan_slide(
            diff,
            previous,
            current,
            residual_frontier=np.arange(
                previous.graph.num_vertices, dtype=np.int64
            ),
            seeds=self._seeds(stream, current),
            cutover_ratio=1.0,
        )
        assert plan.incremental
        assert plan.reason == "ok"
        assert plan.frontier is not None
        assert plan.num_affected == plan.frontier.size
        assert 0.0 <= plan.affected_ratio <= 1.0

    def test_bad_cutover_ratio_rejected(self, slide_fixture, stream):
        previous, diff, current = slide_fixture
        with pytest.raises(PipelineError):
            plan_slide(
                diff,
                previous,
                current,
                residual_frontier=np.arange(10, dtype=np.int64),
                seeds=self._seeds(stream, current),
                cutover_ratio=1.5,
            )


class TestIncrementalServing:
    @staticmethod
    def _make(stream, **kwargs):
        return SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine(frontier="auto")), **kwargs
        )

    def test_bitwise_identity_with_fewer_edges(self, stream):
        full = self._make(stream)
        inc = self._make(stream, incremental=True, cutover_ratio=1.0)
        full.start(0, 8)
        inc.start(0, 8)
        # The cold start has no previous detection to re-converge from.
        assert inc.last_plan.reason == "cold"
        for _ in range(2):
            _, full_det = full.slide()
            _, inc_det = inc.slide()
            assert inc.last_plan.incremental
            assert inc.last_plan.reason == "ok"
            assert (
                inc_det.lp_result.labels_hash()
                == full_det.lp_result.labels_hash()
            )
            assert processed_edges(inc_det) < processed_edges(full_det)

    def test_cutover_slide_still_identical(self, stream):
        full = self._make(stream)
        forced = self._make(stream, incremental=True, cutover_ratio=0.0)
        full.start(0, 8)
        forced.start(0, 8)
        _, full_det = full.slide()
        _, forced_det = forced.slide()
        assert forced.last_plan.mode == "full"
        assert forced.last_plan.reason == "cutover"
        assert (
            forced_det.lp_result.labels_hash()
            == full_det.lp_result.labels_hash()
        )

    def test_dense_engine_plans_full(self, stream):
        # A dense-mode engine cannot accept an initial frontier; the plan
        # must say so instead of silently serving a different schedule.
        detector = SlidingWindowDetector(
            stream,
            ClusterDetector(GLPEngine()),
            incremental=True,
        )
        detector.start(0, 8)
        detector.slide()
        assert detector.last_plan.mode == "full"
        assert detector.last_plan.reason == "unsupported-engine"

    def test_diff_and_plan_metrics_recorded(self, stream):
        inc = self._make(stream, incremental=True, cutover_ratio=1.0)
        with obs.observe() as session:
            inc.start(0, 8)
            inc.slide()
        entries = session.metrics.to_dict()["metrics"]
        names = {entry["name"] for entry in entries}
        assert "pipeline_window_diff_pairs_total" in names
        assert "pipeline_window_diff_ratio" in names
        assert "pipeline_incremental_total" in names
        assert "pipeline_affected_vertices" in names
        diff = inc.builder.last_diff
        kinds = {
            entry["labels"].get("kind"): entry["value"]
            for entry in entries
            if entry["name"] == "pipeline_window_diff_pairs_total"
        }
        assert kinds["added"] == diff.num_added
        assert kinds["removed"] == diff.num_removed
        assert kinds["reweighted"] == diff.num_reweighted

    def test_injected_oom_recomputes_full_not_stale(self, stream):
        """A device fault mid-incremental-slide must degrade the engine,
        never the answer: the fallback reruns the full warm detection."""
        reference = self._make(stream)
        inc = self._make(stream, incremental=True, cutover_ratio=1.0)
        reference.start(0, 8)
        inc.start(0, 8)
        reference.slide()
        inc.slide()  # clean slide establishes the residual frontier
        _, ref_det = reference.slide()
        with obs.observe():
            with inject(FaultPlan.parse("oom@2x999999")):
                _, inc_det = inc.slide()
        # The plan went incremental, but the degraded detection matches
        # the clean full recompute bit for bit.
        assert inc.last_plan.incremental
        assert (
            inc_det.lp_result.labels_hash()
            == ref_det.lp_result.labels_hash()
        )
