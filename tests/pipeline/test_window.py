"""Tests for sliding-window graph construction."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)
from repro.pipeline.window import SlidingWindow, build_window_graph


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=1000,
            num_products=500,
            num_days=30,
            transactions_per_day=400,
            num_rings=3,
            ring_size=6,
            seed=2,
        )
    )


class TestWindowGraph:
    def test_bipartite_structure(self, stream):
        window = build_window_graph(stream, 0, 10)
        graph = window.graph
        n_users = window.num_users
        # Users only connect to products and vice versa.
        for v in range(0, min(50, n_users)):
            nbrs = graph.neighbors(v)
            assert np.all(nbrs >= n_users)
        for v in range(n_users, min(n_users + 50, graph.num_vertices)):
            nbrs = graph.neighbors(v)
            assert np.all(nbrs < n_users)

    def test_vertices_are_touched_entities(self, stream):
        window = build_window_graph(stream, 5, 5)
        tx = stream.window_transactions(5, 5)
        assert window.users.size == np.unique(tx["user"]).size
        assert window.products.size == np.unique(tx["product"]).size

    def test_edge_weights_are_transaction_counts(self, stream):
        window = build_window_graph(stream, 0, 30)
        tx = stream.window_transactions(0, 30)
        graph = window.graph
        assert graph.weights is not None
        # Total weight = 2x transactions (symmetrized).
        assert graph.weights.sum() == pytest.approx(2 * tx.size)

    def test_user_vertex_roundtrip(self, stream):
        window = build_window_graph(stream, 0, 10)
        some_users = window.users[:20]
        vertices = window.window_vertex_of_user(some_users)
        assert np.array_equal(
            window.user_of_window_vertex(vertices), some_users
        )

    def test_absent_user_maps_to_minus_one(self, stream):
        window = build_window_graph(stream, 0, 1)
        # Guaranteed-absent id (beyond the universe used in the window).
        missing = np.array([stream.num_users - 1 + 10**6])
        assert window.window_vertex_of_user(missing)[0] == -1

    def test_product_vertices_map_to_minus_one_user(self, stream):
        window = build_window_graph(stream, 0, 10)
        product_vertex = np.array([window.num_users])
        assert window.user_of_window_vertex(product_vertex)[0] == -1

    def test_longer_window_superset_shape(self, stream):
        short = build_window_graph(stream, 20, 5)
        long = build_window_graph(stream, 10, 15)
        assert long.graph.num_vertices >= short.graph.num_vertices
        assert long.graph.num_edges >= short.graph.num_edges


class TestEmptyWindow:
    """Regression: a zero-user window must answer lookups, not raise.

    ``window_vertex_of_user`` used to evaluate ``self.users[positions]``
    unconditionally; with an empty user set the clip bound collapsed to
    ``-1`` and the fancy index raised ``IndexError`` deep inside the
    serving path (seed translation, score lookups).
    """

    @pytest.fixture
    def empty_window(self):
        from repro.graph.builder import from_edge_arrays
        from repro.pipeline.window import WindowGraph

        empty = np.empty(0, dtype=np.int64)
        # One product vertex, zero users, no edges: the shape a day of
        # product-only activity (or a fully-retired window) produces.
        graph = from_edge_arrays(
            empty, empty, 1, symmetrize=True, name="empty-window"
        )
        return WindowGraph(
            graph=graph,
            users=empty,
            products=np.array([7], dtype=np.int64),
            start_day=0,
            num_days=1,
        )

    def test_lookup_returns_all_absent(self, empty_window):
        queried = np.array([0, 3, 10**6], dtype=np.int64)
        vertices = empty_window.window_vertex_of_user(queried)
        assert vertices.shape == queried.shape
        assert np.all(vertices == -1)

    def test_empty_query_on_empty_window(self, empty_window):
        vertices = empty_window.window_vertex_of_user(
            np.empty(0, dtype=np.int64)
        )
        assert vertices.size == 0

    def test_seed_store_translation(self, empty_window):
        from repro.pipeline.seeds import SeedStore

        store = SeedStore({4: 1, 9: 2})
        assert store.window_seeds(empty_window) == {}

    def test_serving_score_on_empty_window(self, empty_window):
        from repro.serving.service import score_user
        from repro.types import NO_LABEL

        labels = np.full(1, NO_LABEL, dtype=np.int64)
        label, flagged = score_user(empty_window, labels, frozenset(), 42)
        assert label == int(NO_LABEL)
        assert flagged is False


class TestSlidingWindow:
    def test_tumbling_iteration(self, stream):
        windows = list(SlidingWindow(stream, 10))
        assert len(windows) == 3
        assert [w.start_day for w in windows] == [0, 10, 20]

    def test_sliding_step(self, stream):
        windows = list(SlidingWindow(stream, 10, step_days=5))
        assert [w.start_day for w in windows] == [0, 5, 10, 15, 20]

    def test_latest(self, stream):
        latest = SlidingWindow(stream, 10).latest()
        assert latest.start_day == 20
        assert latest.num_days == 10

    def test_window_longer_than_stream_rejected(self, stream):
        with pytest.raises(PipelineError):
            SlidingWindow(stream, 31)

    def test_invalid_params(self, stream):
        with pytest.raises(PipelineError):
            SlidingWindow(stream, 0)
        with pytest.raises(PipelineError):
            SlidingWindow(stream, 5, step_days=0)

    def test_latest_rejects_drifted_config(self, stream):
        """Regression: config drift past the ``__init__`` guard.

        Reconfiguring ``window_days`` after construction used to make
        ``latest()`` compute a negative ``start_day`` and silently build
        a window over the wrong transactions; it must raise instead.
        """
        sliding = SlidingWindow(stream, 10)
        sliding.window_days = stream.config.num_days + 5
        with pytest.raises(PipelineError, match="no complete window"):
            sliding.latest()

    def test_latest_exact_stream_length_ok(self, stream):
        sliding = SlidingWindow(stream, 10)
        sliding.window_days = stream.config.num_days
        latest = sliding.latest()
        assert latest.start_day == 0
        assert latest.num_days == stream.config.num_days
