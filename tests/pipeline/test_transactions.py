"""Tests for the synthetic transaction stream."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)


@pytest.fixture(scope="module")
def small_stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=2000,
            num_products=1000,
            num_days=20,
            transactions_per_day=500,
            num_rings=5,
            ring_size=8,
            seed=1,
        )
    )


class TestGeneration:
    def test_record_fields(self, small_stream):
        tx = small_stream.transactions
        assert set(tx.dtype.names) == {"day", "user", "product", "amount"}
        assert tx["day"].min() == 0
        assert tx["day"].max() == 19
        assert tx["user"].max() < 2000
        assert tx["product"].max() < 1000
        assert np.all(tx["amount"] > 0)

    def test_deterministic(self):
        config = TransactionStreamConfig(
            num_users=500, num_products=200, num_days=5,
            transactions_per_day=100, num_rings=2, ring_size=5, seed=9,
        )
        a = TransactionStream(config).transactions
        b = TransactionStream(config).transactions
        assert np.array_equal(a, b)

    def test_rings_at_top_of_id_space(self, small_stream):
        config = small_stream.config
        ring_base = config.num_users - config.num_rings * config.ring_size
        for ring in small_stream.rings:
            assert ring.members.min() >= ring_base
            assert ring.members.size == config.ring_size

    def test_ring_membership_array(self, small_stream):
        membership = small_stream.ring_membership()
        assert membership.size == small_stream.num_users
        for ring in small_stream.rings:
            assert np.all(membership[ring.members] == ring.ring_id)
        honest = membership == -1
        assert honest.sum() == small_stream.num_users - 5 * 8

    def test_blacklist_subset_of_rings(self, small_stream):
        blacklist = small_stream.blacklist()
        membership = small_stream.ring_membership()
        for user, label in blacklist.items():
            assert membership[user] == label
        # seed_fraction=0.25 of ring_size=8 -> 2 per ring.
        assert len(blacklist) == 5 * 2

    def test_ring_traffic_concentrates_on_ring_products(self, small_stream):
        tx = small_stream.transactions
        ring = small_stream.rings[0]
        ring_tx = tx[np.isin(tx["user"], ring.members)]
        on_ring_products = np.isin(ring_tx["product"], ring.products).mean()
        assert on_ring_products > 0.6

    def test_window_slicing(self, small_stream):
        window = small_stream.window_transactions(5, 3)
        assert window["day"].min() >= 5
        assert window["day"].max() < 8
        with pytest.raises(PipelineError):
            small_stream.window_transactions(0, 0)


class TestConfigValidation:
    def test_rings_exceed_universe(self):
        with pytest.raises(PipelineError):
            TransactionStreamConfig(
                num_users=10, num_rings=3, ring_size=5
            )

    def test_bad_seed_fraction(self):
        with pytest.raises(PipelineError):
            TransactionStreamConfig(seed_fraction=0.0)

    def test_bad_days(self):
        with pytest.raises(PipelineError):
            TransactionStreamConfig(num_days=0)
