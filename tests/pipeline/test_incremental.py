"""Tests for incremental window maintenance and warm-started detection."""

import numpy as np
import pytest

from repro import GLPEngine, SeededFraudLP
from repro.errors import PipelineError
from repro.pipeline.detector import ClusterDetector
from repro.pipeline.incremental import (
    IncrementalWindowBuilder,
    SlidingWindowDetector,
    warm_start_seeds,
)
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)
from repro.pipeline.window import build_window_graph
from repro.pipeline.seeds import SeedStore


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=1500,
            num_products=800,
            num_days=15,
            transactions_per_day=600,
            num_rings=4,
            ring_size=8,
            seed=21,
        )
    )


class TestIncrementalBuilder:
    def test_matches_batch_construction(self, stream):
        builder = IncrementalWindowBuilder(stream)
        for day in range(5):
            builder.add_day(day)
        incremental = builder.build()
        batch = build_window_graph(stream, 0, 5)
        assert incremental.graph.num_vertices == batch.graph.num_vertices
        assert incremental.graph.num_edges == batch.graph.num_edges
        assert np.array_equal(incremental.users, batch.users)
        # Same adjacency and weights after compaction.
        assert np.array_equal(
            incremental.graph.offsets, batch.graph.offsets
        )
        assert np.array_equal(
            incremental.graph.indices, batch.graph.indices
        )
        np.testing.assert_allclose(
            incremental.graph.weights, batch.graph.weights
        )

    def test_slide_matches_rebuilt_window(self, stream):
        builder = IncrementalWindowBuilder(stream)
        for day in range(5):
            builder.add_day(day)
        builder.slide()  # now days 1..5
        slid = builder.build()
        rebuilt = build_window_graph(stream, 1, 5)
        assert slid.graph.num_edges == rebuilt.graph.num_edges
        assert np.array_equal(slid.users, rebuilt.users)
        np.testing.assert_allclose(
            slid.graph.weights.sum(), rebuilt.graph.weights.sum()
        )

    def test_retire_then_add_roundtrip(self, stream):
        builder = IncrementalWindowBuilder(stream)
        builder.add_day(0)
        builder.add_day(1)
        pairs_before = builder.num_pairs
        builder.retire_day(1)
        builder.add_day(1)
        assert builder.num_pairs == pairs_before

    def test_double_add_rejected(self, stream):
        builder = IncrementalWindowBuilder(stream)
        builder.add_day(0)
        with pytest.raises(PipelineError):
            builder.add_day(0)

    def test_retire_missing_rejected(self, stream):
        builder = IncrementalWindowBuilder(stream)
        with pytest.raises(PipelineError):
            builder.retire_day(3)

    def test_empty_build_rejected(self, stream):
        with pytest.raises(PipelineError):
            IncrementalWindowBuilder(stream).build()

    def test_slide_past_stream_end(self, stream):
        builder = IncrementalWindowBuilder(stream)
        builder.add_day(stream.config.num_days - 1)
        with pytest.raises(PipelineError):
            builder.slide()

    def test_five_slides_match_dict_reference(self, stream):
        """The vectorized builder tracks a naive per-transaction dict
        exactly across five consecutive one-day slides."""

        def reference_counts(start, num_days):
            counts = {}
            txns = stream.window_transactions(start, num_days)
            for user, product in zip(txns["user"], txns["product"]):
                counts[(int(user), int(product))] = (
                    counts.get((int(user), int(product)), 0) + 1
                )
            return counts

        builder = IncrementalWindowBuilder(stream)
        for day in range(5):
            builder.add_day(day)
        for start in range(1, 6):
            builder.slide()
            expected = reference_counts(start, 5)
            got = {
                (int(k >> 32), int(k & 0xFFFFFFFF)): c
                for k, c in zip(builder._pair_keys, builder._pair_counts)
            }
            assert len(got) == len(expected)
            for pair, count in expected.items():
                assert got[pair] == count


class TestWarmStart:
    def _detect(self, window, seeds):
        program = SeededFraudLP(seeds)
        result = GLPEngine().run(
            window.graph, program, max_iterations=20
        )
        return result

    def test_warm_start_converges_faster(self, stream):
        store = SeedStore(stream.blacklist())
        previous = build_window_graph(stream, 0, 10)
        prev_result = self._detect(previous, store.window_seeds(previous))

        current = build_window_graph(stream, 1, 10)
        cold_seeds = store.window_seeds(current)
        cold = self._detect(current, cold_seeds)

        warm_seeds = warm_start_seeds(
            previous, prev_result.labels, current, cold_seeds
        )
        warm = self._detect(current, warm_seeds)
        assert warm.num_iterations <= cold.num_iterations
        # Warm start begins with far more labeled vertices.
        assert len(warm_seeds) > 5 * len(cold_seeds)

    def test_blacklist_wins_conflicts(self, stream):
        store = SeedStore(stream.blacklist())
        previous = build_window_graph(stream, 0, 10)
        prev_result = self._detect(previous, store.window_seeds(previous))
        current = build_window_graph(stream, 1, 10)
        base = store.window_seeds(current)
        merged = warm_start_seeds(
            previous, prev_result.labels, current, base
        )
        for vertex, label in base.items():
            assert merged[vertex] == label

    def test_max_carryover_cap(self, stream):
        store = SeedStore(stream.blacklist())
        previous = build_window_graph(stream, 0, 10)
        prev_result = self._detect(previous, store.window_seeds(previous))
        current = build_window_graph(stream, 1, 10)
        base = store.window_seeds(current)
        capped = warm_start_seeds(
            previous, prev_result.labels, current, base, max_carryover=5
        )
        assert len(capped) <= 5 + len(base)


class TestSlidingWindowDetector:
    def test_start_then_slide_warm_starts(self, stream):
        detector = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine(frontier="auto"))
        )
        window, cold = detector.start(0, 8)
        assert window.start_day == 0
        slid_window, warm = detector.slide()
        assert slid_window.start_day == 1
        # Warm start converges at least as fast as the cold run.
        assert (
            warm.lp_result.num_iterations <= cold.lp_result.num_iterations
        )
        assert warm.clusters

    def test_slide_before_start_rejected(self, stream):
        detector = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine())
        )
        with pytest.raises(PipelineError):
            detector.slide()

    def test_double_start_rejected(self, stream):
        detector = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine())
        )
        detector.start(0, 5)
        with pytest.raises(PipelineError):
            detector.start(0, 5)


class TestWarmStartEmptyProductSide:
    """Regression: ``carry_products=True`` with an empty current product
    side raised IndexError — ``&`` does not short-circuit, so the
    emptiness test folded into the ``found`` mask still indexed
    ``current.products``.  The guard must return user-only carryover."""

    def _window(self, users, products):
        from repro.pipeline.window import WindowGraph

        # warm_start_seeds never touches .graph — id mappings only.
        return WindowGraph(
            graph=None,
            users=np.asarray(users, dtype=np.int64),
            products=np.asarray(products, dtype=np.int64),
            start_day=0,
            num_days=1,
        )

    def test_empty_current_products_returns_user_carryover(self):
        from repro.types import NO_LABEL

        previous = self._window([10, 20], [5])
        # user 10 -> label 7, user 20 unlabeled, product 5 -> label 9.
        previous_labels = np.array([7, NO_LABEL, 9], dtype=np.int64)
        current = self._window([10, 20], [])
        merged = warm_start_seeds(
            previous, previous_labels, current, {1: 42},
            carry_products=True,
        )
        # User 10 is window vertex 0 in the current window; the labeled
        # product has nowhere to land and must be silently dropped.
        assert merged == {0: 7, 1: 42}

    def test_nonempty_products_still_carry(self, stream):
        store = SeedStore(stream.blacklist())
        previous = build_window_graph(stream, 0, 10)
        program = SeededFraudLP(store.window_seeds(previous))
        prev_result = GLPEngine().run(
            previous.graph, program, max_iterations=20
        )
        current = build_window_graph(stream, 1, 10)
        base = store.window_seeds(current)
        user_only = warm_start_seeds(
            previous, prev_result.labels, current, base
        )
        with_products = warm_start_seeds(
            previous, prev_result.labels, current, base,
            carry_products=True,
        )
        product_seeds = {
            v for v in with_products if v >= current.num_users
        }
        assert product_seeds  # the guard must not disable the feature
        assert len(with_products) > len(user_only)
