"""Tests for seeds, detector, downstream scoring and metrics."""

import numpy as np
import pytest

from repro import GLPEngine
from repro.errors import PipelineError
from repro.pipeline.detector import ClusterDetector
from repro.pipeline.downstream import ClusterScorer
from repro.pipeline.metrics import cluster_purity, user_detection_metrics
from repro.pipeline.seeds import SeedStore
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)
from repro.pipeline.window import build_window_graph


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=3000,
            num_products=1500,
            num_days=20,
            transactions_per_day=1500,
            num_rings=8,
            ring_size=10,
            ring_transactions_per_day=25,
            seed=4,
        )
    )


@pytest.fixture(scope="module")
def window(stream):
    return build_window_graph(stream, 0, 20)


class TestSeedStore:
    def test_add_and_contains(self):
        store = SeedStore()
        store.add(5, 1)
        assert 5 in store
        assert 6 not in store
        assert len(store) == 1

    def test_add_batch_and_remove(self):
        store = SeedStore()
        store.add_batch([1, 2, 3], [0, 0, 1])
        assert len(store) == 3
        store.remove(2)
        assert 2 not in store
        store.remove(999)  # silently ignored

    def test_invalid_entries(self):
        store = SeedStore()
        with pytest.raises(PipelineError):
            store.add(-1, 0)
        with pytest.raises(PipelineError):
            store.add(0, -1)

    def test_window_translation(self, stream, window):
        store = SeedStore(stream.blacklist())
        seeds = store.window_seeds(window)
        assert seeds  # some seeded users are active in the window
        membership = stream.ring_membership()
        for vertex, label in seeds.items():
            user = window.user_of_window_vertex(np.array([vertex]))[0]
            assert membership[user] == label

    def test_empty_store_empty_seeds(self, window):
        assert SeedStore().window_seeds(window) == {}


class TestDetector:
    def test_detects_ring_clusters(self, stream, window):
        store = SeedStore(stream.blacklist())
        detector = ClusterDetector(
            GLPEngine(), max_iterations=10, max_hops=5
        )
        detection = detector.detect(window, store.window_seeds(window))
        assert detection.clusters
        assert detection.lp_seconds > 0
        # Flagged users overlap heavily with true ring members.
        metrics = user_detection_metrics(
            detection.flagged_users(), stream, active_users=window.users
        )
        assert metrics.recall > 0.5

    def test_cluster_size_band(self, stream, window):
        store = SeedStore(stream.blacklist())
        detector = ClusterDetector(
            GLPEngine(), max_iterations=10, max_hops=5,
            min_cluster_size=3, max_cluster_size=100,
        )
        detection = detector.detect(window, store.window_seeds(window))
        for cluster in detection.clusters:
            assert 3 <= cluster.vertices.size <= 100

    def test_empty_seeds_rejected(self, window):
        detector = ClusterDetector(GLPEngine())
        with pytest.raises(PipelineError):
            detector.detect(window, {})

    def test_invalid_size_band(self):
        with pytest.raises(PipelineError):
            ClusterDetector(GLPEngine(), min_cluster_size=10,
                            max_cluster_size=5)

    def test_num_seeds_counted(self, stream, window):
        store = SeedStore(stream.blacklist())
        detector = ClusterDetector(GLPEngine(), max_iterations=10, max_hops=5)
        detection = detector.detect(window, store.window_seeds(window))
        assert any(c.num_seeds > 0 for c in detection.clusters)


class TestScorerAndMetrics:
    def test_scoring_features(self, stream, window):
        store = SeedStore(stream.blacklist())
        detector = ClusterDetector(GLPEngine(), max_iterations=10, max_hops=5)
        detection = detector.detect(window, store.window_seeds(window))
        scoring = ClusterScorer().score(window, detection.clusters)
        assert len(scoring.scored) == len(detection.clusters)
        assert scoring.seconds > 0
        for scored in scoring.scored:
            assert 0.0 <= scored.score <= 1.0
            assert 0.0 <= scored.density <= 1.0
            assert 0.0 <= scored.seed_fraction <= 1.0

    def test_ring_clusters_score_high(self, stream, window):
        store = SeedStore(stream.blacklist())
        detector = ClusterDetector(GLPEngine(), max_iterations=10, max_hops=5)
        detection = detector.detect(window, store.window_seeds(window))
        scoring = ClusterScorer().score(window, detection.clusters)
        purities = cluster_purity(detection.clusters, stream)
        # Clusters that are pure rings should mostly classify as fraud.
        pure_labels = [l for l, p in purities.items() if p > 0.8]
        fraud_labels = {s.cluster.label for s in scoring.fraud_clusters()}
        if pure_labels:
            hit = sum(1 for l in pure_labels if l in fraud_labels)
            assert hit / len(pure_labels) > 0.6

    def test_scorer_invalid_rate(self):
        with pytest.raises(PipelineError):
            ClusterScorer(edges_per_second=0)

    def test_metrics_arithmetic(self):
        from repro.pipeline.metrics import DetectionMetrics

        metrics = DetectionMetrics(
            true_positives=8, false_positives=2, false_negatives=8
        )
        assert metrics.precision == 0.8
        assert metrics.recall == 0.5
        assert metrics.f1 == pytest.approx(2 * 0.8 * 0.5 / 1.3)

    def test_metrics_empty_flagged(self, stream):
        metrics = user_detection_metrics(np.empty(0, dtype=np.int64), stream)
        assert metrics.precision == 0.0
        assert metrics.true_positives == 0
