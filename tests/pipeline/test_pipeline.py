"""Tests for the end-to-end fraud-detection pipeline."""

import numpy as np
import pytest

from repro import GLPEngine
from repro.baselines import InHouseDistributedEngine
from repro.errors import PipelineError
from repro.pipeline.detector import ClusterDetector
from repro.pipeline.pipeline import FraudDetectionPipeline
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=4000,
            num_products=2000,
            num_days=30,
            transactions_per_day=2000,
            num_rings=10,
            ring_size=10,
            seed=6,
        )
    )


@pytest.fixture(scope="module")
def glp_pipeline(stream):
    detector = ClusterDetector(GLPEngine(), max_iterations=15, max_hops=5)
    return FraudDetectionPipeline(stream, detector)


class TestEndToEnd:
    def test_report_structure(self, glp_pipeline):
        report = glp_pipeline.run_window(10)
        assert report.window_days == 10
        assert report.num_vertices > 0
        assert report.num_edges > 0
        assert report.construction_seconds > 0
        assert report.lp_seconds > 0
        assert report.total_seconds == pytest.approx(
            report.construction_seconds
            + report.lp_seconds
            + report.downstream_seconds
        )
        assert 0.0 <= report.lp_fraction <= 1.0

    def test_detection_quality(self, glp_pipeline):
        report = glp_pipeline.run_window(20)
        assert report.num_fraud_clusters > 0
        assert report.metrics.precision > 0.6
        assert report.metrics.recall > 0.4

    def test_window_sweep(self, glp_pipeline):
        reports = glp_pipeline.run_windows([10, 20, 30])
        assert [r.window_days for r in reports] == [10, 20, 30]
        edges = [r.num_edges for r in reports]
        assert edges == sorted(edges)

    def test_lp_share_depends_on_engine(self, stream):
        slow = FraudDetectionPipeline(
            stream,
            ClusterDetector(
                InHouseDistributedEngine(), max_iterations=15, max_hops=5
            ),
        )
        fast = FraudDetectionPipeline(
            stream,
            ClusterDetector(GLPEngine(), max_iterations=15, max_hops=5),
        )
        slow_report = slow.run_window(20)
        fast_report = fast.run_window(20)
        assert slow_report.lp_fraction > fast_report.lp_fraction
        # Same detections either way.
        assert slow_report.num_clusters == fast_report.num_clusters
        assert (
            slow_report.metrics.true_positives
            == fast_report.metrics.true_positives
        )

    def test_invalid_construction_rate(self, stream):
        detector = ClusterDetector(GLPEngine())
        with pytest.raises(PipelineError):
            FraudDetectionPipeline(stream, detector, construction_rate=0)

    def test_explicit_start_day(self, glp_pipeline):
        report = glp_pipeline.run_window(5, start_day=0)
        assert report.window_days == 5
