"""Unit tests for CSR graph storage."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


def make_chain(n=4):
    # 0 <- 1 <- 2 <- 3 (incoming adjacency: vertex v's neighbor is v+1)
    offsets = np.concatenate((np.arange(n - 1), [n - 1, n - 1]))
    indices = np.arange(1, n)
    return CSRGraph(offsets=offsets.astype(np.int64), indices=indices)


class TestConstruction:
    def test_basic_properties(self, triangle_graph):
        assert triangle_graph.num_vertices == 3
        assert triangle_graph.num_edges == 6  # symmetrized cycle
        assert triangle_graph.average_degree == 2.0
        assert triangle_graph.max_degree == 2

    def test_empty_graph(self, empty_graph):
        assert empty_graph.num_vertices == 5
        assert empty_graph.num_edges == 0
        assert empty_graph.average_degree == 0.0
        assert empty_graph.max_degree == 0

    def test_single_vertex_no_edges(self):
        g = CSRGraph(
            offsets=np.array([0, 0]), indices=np.empty(0, dtype=np.int64)
        )
        assert g.num_vertices == 1
        assert g.degree(0) == 0

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(GraphError, match="offsets\\[0\\]"):
            CSRGraph(offsets=np.array([1, 2]), indices=np.array([0, 0]))

    def test_offsets_must_match_indices(self):
        with pytest.raises(GraphError, match="offsets\\[-1\\]"):
            CSRGraph(offsets=np.array([0, 3]), indices=np.array([0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GraphError, match="non-decreasing"):
            CSRGraph(
                offsets=np.array([0, 2, 1, 3]),
                indices=np.array([0, 1, 2]),
            )

    def test_neighbor_ids_in_range(self):
        with pytest.raises(GraphError, match="neighbor ids"):
            CSRGraph(offsets=np.array([0, 1]), indices=np.array([5]))

    def test_negative_neighbor_rejected(self):
        with pytest.raises(GraphError, match="neighbor ids"):
            CSRGraph(offsets=np.array([0, 1]), indices=np.array([-1]))

    def test_weights_shape_must_match(self):
        with pytest.raises(GraphError, match="weights shape"):
            CSRGraph(
                offsets=np.array([0, 1]),
                indices=np.array([0]),
                weights=np.array([1.0, 2.0]),
            )

    def test_arrays_are_read_only(self, triangle_graph):
        with pytest.raises(ValueError):
            triangle_graph.indices[0] = 0
        with pytest.raises(ValueError):
            triangle_graph.offsets[0] = 1

    def test_nbytes_counts_weights(self):
        g = CSRGraph(
            offsets=np.array([0, 1]),
            indices=np.array([0]),
            weights=np.array([2.0]),
        )
        unweighted = CSRGraph(
            offsets=np.array([0, 1]), indices=np.array([0])
        )
        assert g.nbytes == unweighted.nbytes + 8


class TestNeighborhoods:
    def test_neighbors_slices(self, star_graph):
        hub = star_graph.neighbors(0)
        assert sorted(hub.tolist()) == list(range(1, 9))
        leaf = star_graph.neighbors(3)
        assert leaf.tolist() == [0]

    def test_degree(self, star_graph):
        assert star_graph.degree(0) == 8
        assert star_graph.degree(1) == 1
        assert star_graph.degrees.sum() == star_graph.num_edges

    def test_neighbor_weights_default_ones(self, triangle_graph):
        w = triangle_graph.neighbor_weights(0)
        assert np.all(w == 1.0)
        assert w.size == triangle_graph.degree(0)

    def test_vertex_out_of_range(self, triangle_graph):
        with pytest.raises(GraphError, match="out of range"):
            triangle_graph.neighbors(3)
        with pytest.raises(GraphError, match="out of range"):
            triangle_graph.degree(-1)

    def test_edge_sources_expansion(self, star_graph):
        sources = star_graph.edge_sources()
        assert sources.size == star_graph.num_edges
        # The hub contributes its degree's worth of entries.
        assert (sources == 0).sum() == 8

    def test_iter_edges_matches_neighbors(self, triangle_graph):
        edges = list(triangle_graph.iter_edges())
        assert len(edges) == triangle_graph.num_edges
        for v, u in edges:
            assert u in triangle_graph.neighbors(v).tolist()


class TestDerivedGraphs:
    def test_reversed_swaps_directions(self):
        g = make_chain(4)
        r = g.reversed()
        assert r.num_edges == g.num_edges
        # g: v's in-neighbor is v+1; reversed: v's in-neighbor is v-1.
        assert r.neighbors(1).tolist() == [0]
        assert r.neighbors(0).tolist() == []

    def test_reversed_involution(self, powerlaw_graph):
        rr = powerlaw_graph.reversed().reversed()
        assert np.array_equal(rr.offsets, powerlaw_graph.offsets)
        assert np.array_equal(
            np.sort(rr.indices), np.sort(powerlaw_graph.indices)
        )

    def test_reversed_preserves_weights(self):
        g = CSRGraph(
            offsets=np.array([0, 1, 2]),
            indices=np.array([1, 0]),
            weights=np.array([3.0, 5.0]),
        )
        r = g.reversed()
        assert r.weights is not None
        assert r.neighbor_weights(0).tolist() == [5.0]
        assert r.neighbor_weights(1).tolist() == [3.0]

    def test_subgraph_induced(self, two_cliques_graph):
        sub, mapping = two_cliques_graph.subgraph(np.arange(5))
        assert sub.num_vertices == 5
        # Clique of 5: each vertex has 4 in-neighbors; the bridge endpoint
        # (old vertex 4) loses its cross edge.
        assert sub.num_edges == 20
        assert mapping.tolist() == [0, 1, 2, 3, 4]

    def test_subgraph_relabels(self, two_cliques_graph):
        sub, mapping = two_cliques_graph.subgraph(np.array([5, 6, 7]))
        assert sub.num_vertices == 3
        assert mapping.tolist() == [5, 6, 7]
        assert sub.indices.max() < 3

    def test_subgraph_out_of_range(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.subgraph(np.array([0, 99]))
