"""Tests for community-quality metrics."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.quality import (
    conductance,
    coverage,
    modularity,
    normalized_mutual_information,
)


class TestModularity:
    def test_perfect_split_positive(self, two_cliques_graph):
        labels = np.array([0] * 5 + [1] * 5)
        q = modularity(two_cliques_graph, labels)
        assert q > 0.4

    def test_single_community_zero(self, two_cliques_graph):
        labels = np.zeros(10, dtype=np.int64)
        assert modularity(two_cliques_graph, labels) == pytest.approx(0.0)

    def test_bad_split_worse(self, two_cliques_graph):
        good = np.array([0] * 5 + [1] * 5)
        bad = np.arange(10) % 2  # interleaved
        assert modularity(two_cliques_graph, good) > modularity(
            two_cliques_graph, bad
        )

    def test_empty_graph(self, empty_graph):
        assert modularity(empty_graph, np.zeros(5, dtype=np.int64)) == 0.0

    def test_shape_check(self, triangle_graph):
        with pytest.raises(GraphError):
            modularity(triangle_graph, np.zeros(5, dtype=np.int64))

    def test_lp_result_beats_random(self, community_graph):
        from repro import ClassicLP, GLPEngine

        graph, truth = community_graph
        result = GLPEngine().run(graph, ClassicLP(), max_iterations=20)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 8, graph.num_vertices)
        assert modularity(graph, result.labels) > modularity(
            graph, random_labels
        ) + 0.2


class TestNMI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_relabeling_invariant(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([7, 7, 3, 3])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions_low(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 2000)
        b = rng.integers(0, 4, 2000)
        assert normalized_mutual_information(a, b) < 0.05

    def test_partial_agreement_between(self):
        a = np.array([0] * 50 + [1] * 50)
        b = a.copy()
        b[:10] = 1  # corrupt 10%
        nmi = normalized_mutual_information(a, b)
        assert 0.3 < nmi < 1.0

    def test_degenerate_cases(self):
        ones = np.zeros(4, dtype=np.int64)
        assert normalized_mutual_information(ones, ones) == 1.0
        assert normalized_mutual_information(
            ones, np.arange(4)
        ) == pytest.approx(0.0)

    def test_length_mismatch(self):
        with pytest.raises(GraphError):
            normalized_mutual_information(np.zeros(3), np.zeros(4))

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert normalized_mutual_information(empty, empty) == 1.0

    def test_lp_recovers_planted_truth(self, community_graph):
        from repro import ClassicLP, GLPEngine

        graph, truth = community_graph
        result = GLPEngine().run(graph, ClassicLP(), max_iterations=20)
        assert normalized_mutual_information(result.labels, truth) > 0.8


class TestConductanceAndCoverage:
    def test_clean_split_low_conductance(self, two_cliques_graph):
        labels = np.array([0] * 5 + [1] * 5)
        phi = conductance(two_cliques_graph, labels)
        assert set(phi) == {0, 1}
        for value in phi.values():
            assert value < 0.1

    def test_interleaved_high_conductance(self, two_cliques_graph):
        labels = (np.arange(10) % 2).astype(np.int64)
        phi = conductance(two_cliques_graph, labels)
        assert min(phi.values()) > 0.5

    def test_coverage_bounds(self, two_cliques_graph):
        perfect = np.zeros(10, dtype=np.int64)
        assert coverage(two_cliques_graph, perfect) == 1.0
        split = np.array([0] * 5 + [1] * 5)
        assert 0.9 < coverage(two_cliques_graph, split) < 1.0

    def test_coverage_empty_graph(self, empty_graph):
        assert coverage(empty_graph, np.zeros(5, dtype=np.int64)) == 1.0

    def test_singleton_community_conductance_one(self, empty_graph):
        labels = np.arange(5)
        phi = conductance(empty_graph, labels)
        assert all(v == 1.0 for v in phi.values())
