"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators.bipartite import (
    bipartite_interaction_graph,
    dense_interaction_core,
    zipf_popularity,
)
from repro.graph.generators.community import (
    fraud_ring_graph,
    planted_partition_graph,
)
from repro.graph.generators.rmat import rmat_edges, rmat_graph
from repro.graph.generators.road import road_network_graph


class TestRMAT:
    def test_shape(self):
        graph = rmat_graph(8, 4.0, seed=0)
        assert graph.num_vertices == 256
        assert graph.num_edges > 0

    def test_determinism(self):
        a = rmat_graph(8, 4.0, seed=3)
        b = rmat_graph(8, 4.0, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_different_seeds_differ(self):
        a = rmat_graph(8, 4.0, seed=1)
        b = rmat_graph(8, 4.0, seed=2)
        assert not np.array_equal(a.offsets, b.offsets)

    def test_power_law_skew(self):
        graph = rmat_graph(11, 8.0, seed=0)
        degrees = graph.degrees
        # Heavy skew: the max degree dwarfs the median.
        assert degrees.max() > 10 * np.median(degrees[degrees > 0])

    def test_edges_in_range(self):
        src, dst = rmat_edges(6, 100, rng=np.random.default_rng(0))
        assert src.max() < 64 and dst.max() < 64
        assert src.min() >= 0 and dst.min() >= 0

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            rmat_edges(0, 10)
        with pytest.raises(GraphError):
            rmat_edges(5, -1)
        with pytest.raises(GraphError):
            rmat_edges(5, 10, a=0.9, b=0.9, c=0.9)  # d < 0


class TestPlantedPartition:
    def test_membership_shape(self):
        graph, membership = planted_partition_graph(200, 4, 8.0, 0.9, seed=0)
        assert membership.size == 200
        assert np.unique(membership).size == 4

    def test_strong_structure_is_assortative(self):
        graph, membership = planted_partition_graph(
            400, 4, 12.0, 0.95, seed=1
        )
        sources = graph.edge_sources()
        same = membership[sources] == membership[graph.indices]
        assert same.mean() > 0.85

    def test_no_structure_when_uniform(self):
        graph, membership = planted_partition_graph(
            400, 4, 12.0, 0.0, seed=1
        )
        sources = graph.edge_sources()
        same = membership[sources] == membership[graph.indices]
        assert same.mean() < 0.5

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            planted_partition_graph(10, 0, 2.0, 0.5)
        with pytest.raises(GraphError):
            planted_partition_graph(10, 2, 2.0, 1.5)
        with pytest.raises(GraphError):
            planted_partition_graph(10, 2, -1.0, 0.5)


class TestFraudRings:
    def test_ring_ids(self):
        graph, ring_id = fraud_ring_graph(500, 4, 8, seed=0)
        assert graph.num_vertices == 500 + 32
        assert (ring_id >= 0).sum() == 32
        assert np.all(ring_id[:500] == -1)

    def test_rings_are_dense(self):
        graph, ring_id = fraud_ring_graph(
            500, 3, 10, ring_density=0.9, seed=1
        )
        for ring in range(3):
            members = np.flatnonzero(ring_id == ring)
            internal = 0
            member_set = set(members.tolist())
            for v in members:
                internal += sum(
                    1 for u in graph.neighbors(int(v)) if int(u) in member_set
                )
            possible = members.size * (members.size - 1)
            assert internal / possible > 0.6

    def test_invalid_ring_size(self):
        with pytest.raises(GraphError):
            fraud_ring_graph(10, 1, 1)


class TestRoad:
    def test_constant_small_degree(self):
        graph = road_network_graph(40, 40, seed=0)
        assert graph.num_vertices == 1600
        assert 2.0 < graph.average_degree < 3.6
        assert graph.max_degree <= 10

    def test_invalid_dims(self):
        with pytest.raises(GraphError):
            road_network_graph(0, 5)
        with pytest.raises(GraphError):
            road_network_graph(5, 5, keep_prob=1.5)


class TestBipartite:
    def test_zipf_normalized(self):
        pop = zipf_popularity(100)
        assert pop.sum() == pytest.approx(1.0)
        assert np.all(np.diff(pop) <= 0)
        with pytest.raises(GraphError):
            zipf_popularity(0)

    def test_bipartite_structure(self):
        graph, num_users = bipartite_interaction_graph(100, 50, 5.0, seed=0)
        assert graph.num_vertices == 150
        for v in range(num_users):
            assert np.all(graph.neighbors(v) >= num_users)

    def test_popular_products_have_higher_degree(self):
        graph, num_users = bipartite_interaction_graph(
            2000, 200, 10.0, zipf_exponent=1.2, seed=1
        )
        product_degrees = graph.degrees[num_users:]
        top = product_degrees[:20].mean()
        tail = product_degrees[-100:].mean()
        assert top > 3 * tail

    def test_dense_core_degree(self):
        graph = dense_interaction_core(128, 50.0, seed=0)
        assert graph.num_vertices == 128
        assert 35 < graph.average_degree <= 100

    def test_dense_core_no_self_loops(self):
        graph = dense_interaction_core(64, 20.0, seed=1)
        sources = graph.edge_sources()
        assert np.all(sources != graph.indices)

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            bipartite_interaction_graph(0, 5, 1.0)
        with pytest.raises(GraphError):
            dense_interaction_core(10, 50.0)
