"""Tests for GraphBuilder."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, from_edge_arrays


class TestBasicBuilding:
    def test_add_single_edges(self):
        builder = GraphBuilder(num_vertices=3)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        graph = builder.build()
        # Incoming adjacency: 1's in-neighbor is 0, 2's is 1.
        assert graph.neighbors(1).tolist() == [0]
        assert graph.neighbors(2).tolist() == [1]
        assert graph.neighbors(0).tolist() == []

    def test_add_edges_batch(self):
        graph = from_edge_arrays(
            np.array([0, 1, 2]), np.array([1, 2, 0]), 3
        )
        assert graph.num_edges == 3

    def test_symmetrize(self):
        graph = from_edge_arrays(
            np.array([0]), np.array([1]), 2, symmetrize=True
        )
        assert graph.neighbors(0).tolist() == [1]
        assert graph.neighbors(1).tolist() == [0]

    def test_dedup_keeps_one(self):
        builder = GraphBuilder(num_vertices=2)
        builder.add_edges(np.array([0, 0, 0]), np.array([1, 1, 1]))
        graph = builder.build(dedup=True)
        assert graph.num_edges == 1

    def test_dedup_sums_weights(self):
        builder = GraphBuilder(num_vertices=2)
        builder.add_edges(
            np.array([0, 0]), np.array([1, 1]), weights=np.array([1.5, 2.5])
        )
        graph = builder.build(dedup=True)
        assert graph.weights.tolist() == [4.0]

    def test_no_dedup(self):
        builder = GraphBuilder(num_vertices=2)
        builder.add_edges(np.array([0, 0]), np.array([1, 1]))
        graph = builder.build(dedup=False)
        assert graph.num_edges == 2

    def test_self_loops_dropped_by_default(self):
        builder = GraphBuilder(num_vertices=2)
        builder.add_edge(0, 0)
        builder.add_edge(0, 1)
        graph = builder.build()
        assert graph.num_edges == 1

    def test_self_loops_kept_on_request(self):
        builder = GraphBuilder(num_vertices=1)
        builder.add_edge(0, 0)
        graph = builder.build(drop_self_loops=False)
        assert graph.num_edges == 1

    def test_neighbors_sorted(self):
        builder = GraphBuilder(num_vertices=4)
        builder.add_edges(np.array([3, 1, 2]), np.array([0, 0, 0]))
        graph = builder.build()
        assert graph.neighbors(0).tolist() == [1, 2, 3]

    def test_empty_build(self):
        graph = GraphBuilder(num_vertices=4).build()
        assert graph.num_vertices == 4
        assert graph.num_edges == 0

    def test_zero_vertices(self):
        graph = GraphBuilder(num_vertices=0).build()
        assert graph.num_vertices == 0


class TestIdInterning:
    def test_hashable_ids_compacted(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        builder.add_edge("bob", "carol")
        graph = builder.build()
        assert graph.num_vertices == 3
        mapping = builder.id_mapping()
        assert set(mapping) == {"alice", "bob", "carol"}

    def test_fixed_mode_has_no_mapping(self):
        builder = GraphBuilder(num_vertices=2)
        assert builder.id_mapping() is None

    def test_fixed_mode_range_check(self):
        builder = GraphBuilder(num_vertices=2)
        with pytest.raises(GraphError):
            builder.add_edge(0, 5)
        with pytest.raises(GraphError):
            builder.add_edges(np.array([0]), np.array([9]))

    def test_add_edge_iter(self):
        builder = GraphBuilder(num_vertices=3)
        builder.add_edge_iter([(0, 1), (1, 2)])
        assert builder.num_pending_edges == 2

    def test_mismatched_batch_shapes(self):
        builder = GraphBuilder(num_vertices=3)
        with pytest.raises(GraphError):
            builder.add_edges(np.array([0, 1]), np.array([2]))

    def test_weights_shape_mismatch(self):
        builder = GraphBuilder(num_vertices=3)
        with pytest.raises(GraphError):
            builder.add_edges(
                np.array([0]), np.array([1]), weights=np.array([1.0, 2.0])
            )

    def test_mixed_weighted_unweighted(self):
        builder = GraphBuilder(num_vertices=3)
        builder.add_edge(0, 1, weight=3.0)
        builder.add_edge(1, 2)  # defaults to weight 1
        graph = builder.build()
        assert graph.weights is not None
        assert sorted(graph.weights.tolist()) == [1.0, 3.0]

    def test_negative_num_vertices(self):
        with pytest.raises(GraphError):
            GraphBuilder(num_vertices=-1)
