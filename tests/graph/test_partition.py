"""Tests for the partitioners."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.partition import (
    balanced_edge_partition,
    boundary_edge_counts,
    partition_by_edge_count,
    partition_by_vertex_count,
)


def check_cover(parts, graph):
    """Partitions tile the vertex range exactly."""
    assert parts[0].start == 0
    assert parts[-1].stop == graph.num_vertices
    for a, b in zip(parts, parts[1:]):
        assert a.stop == b.start
    assert sum(p.num_edges for p in parts) == graph.num_edges


class TestVertexCount:
    def test_near_equal_sizes(self, powerlaw_graph):
        parts = partition_by_vertex_count(powerlaw_graph, 4)
        check_cover(parts, powerlaw_graph)
        sizes = [p.num_vertices for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_single_part(self, powerlaw_graph):
        parts = partition_by_vertex_count(powerlaw_graph, 1)
        assert len(parts) == 1
        assert parts[0].num_edges == powerlaw_graph.num_edges

    def test_invalid(self, powerlaw_graph):
        with pytest.raises(GraphError):
            partition_by_vertex_count(powerlaw_graph, 0)


class TestEdgeCount:
    def test_respects_budget(self, powerlaw_graph):
        max_edges = powerlaw_graph.num_edges // 7
        parts = partition_by_edge_count(powerlaw_graph, max_edges)
        check_cover(parts, powerlaw_graph)
        heavy = powerlaw_graph.degrees.max()
        for part in parts:
            # Only a single oversized vertex may exceed the budget.
            assert part.num_edges <= max(max_edges, heavy)

    def test_oversized_vertex_gets_own_chunk(self, star_graph):
        parts = partition_by_edge_count(star_graph, 2)
        hub_parts = [p for p in parts if p.start <= 0 < p.stop]
        assert hub_parts[0].num_vertices == 1

    def test_empty_graph(self, empty_graph):
        parts = partition_by_edge_count(empty_graph, 10)
        check_cover(parts, empty_graph)

    def test_invalid(self, powerlaw_graph):
        with pytest.raises(GraphError):
            partition_by_edge_count(powerlaw_graph, 0)


class TestBalancedEdges:
    def test_balance(self, powerlaw_graph):
        parts = balanced_edge_partition(powerlaw_graph, 4)
        check_cover(parts, powerlaw_graph)
        sizes = [p.num_edges for p in parts]
        # Within 2x of ideal for a skewed graph.
        ideal = powerlaw_graph.num_edges / 4
        assert max(sizes) < 2.5 * ideal

    def test_more_parts_than_vertices(self, triangle_graph):
        parts = balanced_edge_partition(triangle_graph, 10)
        check_cover(parts, triangle_graph)
        assert len(parts) == 10  # some empty

    def test_invalid(self, powerlaw_graph):
        with pytest.raises(GraphError):
            balanced_edge_partition(powerlaw_graph, -1)


class TestBoundaryEdges:
    def test_single_partition_no_boundary(self, powerlaw_graph):
        parts = balanced_edge_partition(powerlaw_graph, 1)
        counts = boundary_edge_counts(powerlaw_graph, parts)
        assert counts.tolist() == [0]

    def test_boundary_counts_manual(self, two_cliques_graph):
        # Split exactly between the cliques: only the bridge edge crosses.
        parts = partition_by_vertex_count(two_cliques_graph, 2)
        counts = boundary_edge_counts(two_cliques_graph, parts)
        assert counts.sum() == 2  # the bridge, both directions

    def test_total_bounded_by_edges(self, powerlaw_graph):
        parts = balanced_edge_partition(powerlaw_graph, 8)
        counts = boundary_edge_counts(powerlaw_graph, parts)
        assert counts.sum() <= powerlaw_graph.num_edges
