"""Tests for degree statistics and diagnostics."""

import numpy as np
import pytest

from repro.graph.stats import (
    degree_histogram,
    degree_summary,
    label_distribution_stats,
    neighborhood_label_concentration,
    power_law_exponent,
)


class TestDegreeSummary:
    def test_star(self, star_graph):
        summary = degree_summary(star_graph)
        assert summary.max_degree == 8
        assert summary.min_degree == 1
        assert summary.num_edges == 16
        assert summary.low_degree_fraction == 1.0  # all below 32
        assert summary.high_degree_fraction == 0.0

    def test_empty(self, empty_graph):
        summary = degree_summary(empty_graph)
        assert summary.mean_degree == 0.0
        assert summary.high_degree_edge_fraction == 0.0

    def test_high_degree_edge_fraction(self, powerlaw_graph):
        summary = degree_summary(
            powerlaw_graph, low_threshold=4, high_threshold=16
        )
        degrees = powerlaw_graph.degrees
        expected = degrees[degrees > 16].sum() / powerlaw_graph.num_edges
        assert summary.high_degree_edge_fraction == pytest.approx(expected)

    def test_histogram(self, star_graph):
        hist = degree_histogram(star_graph)
        assert hist[1] == 8
        assert hist[8] == 1


class TestPowerLaw:
    def test_exponent_on_rmat(self, powerlaw_graph):
        alpha = power_law_exponent(powerlaw_graph)
        assert 1.2 < alpha < 4.0

    def test_nan_when_too_few(self, empty_graph):
        assert np.isnan(power_law_exponent(empty_graph))


class TestLabelStats:
    def test_distribution_stats(self):
        labels = np.array([0, 0, 0, 1])
        stats = label_distribution_stats(labels)
        assert stats["num_labels"] == 2
        assert stats["largest_fraction"] == 0.75
        assert stats["entropy"] > 0

    def test_uniform_entropy_max(self):
        uniform = label_distribution_stats(np.arange(8))
        skewed = label_distribution_stats(np.zeros(8, dtype=np.int64))
        assert uniform["entropy"] > skewed["entropy"]
        assert skewed["entropy"] == 0.0

    def test_empty(self):
        stats = label_distribution_stats(np.empty(0, dtype=np.int64))
        assert stats["num_labels"] == 0


class TestConcentration:
    def test_converged_labels_concentrate(self, two_cliques_graph):
        converged = np.array([0] * 5 + [9] * 5)
        distinct_ratio, mfl_share = neighborhood_label_concentration(
            two_cliques_graph, converged
        )
        assert distinct_ratio < 0.5
        assert mfl_share > 0.8

    def test_unique_labels_fully_dispersed(self, two_cliques_graph):
        unique = np.arange(10)
        distinct_ratio, mfl_share = neighborhood_label_concentration(
            two_cliques_graph, unique
        )
        assert distinct_ratio == 1.0

    def test_sampled_measurement(self, powerlaw_graph):
        labels = np.arange(powerlaw_graph.num_vertices) % 5
        full = neighborhood_label_concentration(powerlaw_graph, labels)
        sampled = neighborhood_label_concentration(
            powerlaw_graph, labels, sample=50, seed=1
        )
        assert abs(full[0] - sampled[0]) < 0.3

    def test_empty_graph(self, empty_graph):
        result = neighborhood_label_concentration(
            empty_graph, np.zeros(5, dtype=np.int64)
        )
        assert result == (0.0, 0.0)
