"""Tests for the LFR-style benchmark generator."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators.lfr import lfr_graph


class TestStructure:
    def test_shapes(self):
        graph, membership = lfr_graph(500, mu=0.2, seed=0)
        assert graph.num_vertices == 500
        assert membership.size == 500
        assert graph.num_edges > 0

    def test_community_sizes_respect_minimum(self):
        _, membership = lfr_graph(600, mu=0.3, min_community=15, seed=1)
        _, counts = np.unique(membership, return_counts=True)
        assert counts.min() >= 15

    def test_mixing_parameter_controls_cut(self):
        """Measured boundary-edge fraction tracks mu."""
        fractions = {}
        for mu in (0.1, 0.3, 0.5):
            graph, membership = lfr_graph(800, mu=mu, seed=2)
            sources = graph.edge_sources()
            crossing = membership[sources] != membership[graph.indices]
            fractions[mu] = crossing.mean()
        assert fractions[0.1] < fractions[0.3] < fractions[0.5]
        assert fractions[0.1] == pytest.approx(0.1, abs=0.08)
        assert fractions[0.5] == pytest.approx(0.5, abs=0.12)

    def test_degree_distribution_is_skewed(self):
        graph, _ = lfr_graph(1000, mu=0.2, tau1=2.2, seed=3)
        degrees = graph.degrees
        assert degrees.max() > 4 * np.median(degrees[degrees > 0])

    def test_deterministic(self):
        a, ma = lfr_graph(300, mu=0.25, seed=9)
        b, mb = lfr_graph(300, mu=0.25, seed=9)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(ma, mb)

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            lfr_graph(1)
        with pytest.raises(GraphError):
            lfr_graph(100, mu=1.5)
        with pytest.raises(GraphError):
            lfr_graph(100, avg_degree=0.5)
        with pytest.raises(GraphError):
            lfr_graph(100, min_community=1)


class TestLPRecovery:
    def test_lp_recovers_low_mixing(self):
        from repro import ClassicLP, GLPEngine
        from repro.graph.quality import normalized_mutual_information

        graph, truth = lfr_graph(800, mu=0.1, seed=5)
        result = GLPEngine().run(graph, ClassicLP(), max_iterations=20)
        assert normalized_mutual_information(result.labels, truth) > 0.7

    def test_recovery_degrades_with_mixing(self):
        from repro import ClassicLP, GLPEngine
        from repro.graph.quality import normalized_mutual_information

        scores = {}
        for mu in (0.1, 0.6):
            graph, truth = lfr_graph(800, mu=mu, seed=6)
            result = GLPEngine().run(
                graph, ClassicLP(), max_iterations=15
            )
            scores[mu] = normalized_mutual_information(result.labels, truth)
        assert scores[0.1] > scores[0.6] + 0.2
