"""Tests for graph IO (edge lists and npz snapshots)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz


class TestEdgeList:
    def test_roundtrip(self, tmp_path, two_cliques_graph):
        path = tmp_path / "graph.txt"
        save_edge_list(two_cliques_graph, path)
        loaded = load_edge_list(path, num_vertices=10)
        assert loaded.num_vertices == two_cliques_graph.num_vertices
        assert loaded.num_edges == two_cliques_graph.num_edges
        for v in range(10):
            assert np.array_equal(
                loaded.neighbors(v), two_cliques_graph.neighbors(v)
            )

    def test_weighted_roundtrip(self, tmp_path):
        from repro.graph.builder import from_edge_arrays

        graph = from_edge_arrays(
            np.array([0, 1]),
            np.array([1, 2]),
            3,
            weights=np.array([2.5, 0.5]),
        )
        path = tmp_path / "weighted.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path, num_vertices=3)
        assert loaded.weights is not None
        assert loaded.weights.sum() == pytest.approx(3.0)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# more\n1 2\n")
        graph = load_edge_list(path, num_vertices=3)
        assert graph.num_edges == 2

    def test_id_compaction_without_num_vertices(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 300\n")
        graph = load_edge_list(path)
        assert graph.num_vertices == 3

    def test_malformed_field_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError, match="fields"):
            load_edge_list(path)

    def test_non_integer_vertex(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            load_edge_list(path)

    def test_non_numeric_weight(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 heavy\n")
        with pytest.raises(GraphFormatError, match="non-numeric"):
            load_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        graph = load_edge_list(path, num_vertices=5)
        assert graph.num_edges == 0

    def test_symmetrize_on_load(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        graph = load_edge_list(path, num_vertices=2, symmetrize=True)
        assert graph.num_edges == 2


class TestNpz:
    def test_roundtrip(self, tmp_path, powerlaw_graph):
        path = tmp_path / "graph.npz"
        save_npz(powerlaw_graph, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.offsets, powerlaw_graph.offsets)
        assert np.array_equal(loaded.indices, powerlaw_graph.indices)
        assert loaded.name == powerlaw_graph.name

    def test_weighted_roundtrip(self, tmp_path):
        from repro.graph.builder import from_edge_arrays

        graph = from_edge_arrays(
            np.array([0]), np.array([1]), 2, weights=np.array([7.0])
        )
        path = tmp_path / "w.npz"
        save_npz(graph, path)
        loaded = load_npz(path)
        assert loaded.weights.tolist() == [7.0]

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(GraphFormatError, match="missing"):
            load_npz(path)
