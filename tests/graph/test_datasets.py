"""Tests for the Table 2 dataset registry."""

import pytest

from repro.errors import GraphError
from repro.graph.generators import datasets


class TestRegistry:
    def test_all_eight_present_in_order(self):
        assert datasets.dataset_names() == [
            "dblp",
            "roadNet",
            "youtube",
            "aligraph",
            "ljournal",
            "uk-2002",
            "wiki-en",
            "twitter",
        ]

    def test_unknown_name_rejected(self):
        with pytest.raises(GraphError, match="unknown dataset"):
            datasets.load_dataset("facebook")

    def test_loading_is_cached(self):
        a = datasets.load_dataset("dblp")
        b = datasets.load_dataset("dblp")
        assert a is b

    def test_clear_cache(self):
        a = datasets.load_dataset("roadNet")
        datasets.clear_cache()
        b = datasets.load_dataset("roadNet")
        assert a is not b
        datasets.clear_cache()

    def test_structural_signatures(self):
        """Each stand-in preserves the trait the paper's analysis keys on."""
        road = datasets.load_dataset("roadNet")
        assert road.max_degree <= 10  # constant tiny degree
        ali = datasets.load_dataset("aligraph")
        assert ali.average_degree > 100  # extreme density
        twitter = datasets.load_dataset("twitter")
        assert twitter.max_degree > 20 * twitter.average_degree  # heavy tail

    def test_table2_rows_shape(self):
        rows = datasets.table2_rows()
        assert len(rows) == 8
        for name, pv, pe, pavg, ov, oe, oavg in rows:
            assert pv > ov  # stand-ins are scaled down
            assert pe > oe
            assert oavg > 0

    def test_spec_metadata(self):
        spec = datasets.DATASETS["twitter"]
        assert spec.paper_edges == 1_468_365_182
        assert "follower" in spec.description
