"""Differential tests: the sanitizer must not change any result.

Shadow-memory recording only *observes* named accesses; enabling it must
leave labels, the label hash, iteration counts, modeled timings and every
hardware counter bitwise identical — across algorithms (classic, LLP,
SLP), graph families (R-MAT, LFR) and engine schedules (dense, frontier).
This is the contract that lets the instrumentation live permanently in
the memory/atomics hot paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import analysis
from repro.algorithms import ClassicLP, LayeredLP, SpeakerListenerLP
from repro.core.framework import GLPEngine
from repro.graph.generators.lfr import lfr_graph
from repro.graph.generators.rmat import rmat_graph


@pytest.fixture(scope="module")
def graphs():
    lfr, _membership = lfr_graph(400, mu=0.25, seed=5, name="lfr-small")
    return {
        "rmat": rmat_graph(9, 6.0, seed=21, name="rmat-small"),
        "lfr": lfr,
    }


PROGRAMS = {
    "classic": lambda: ClassicLP(),
    "llp": lambda: LayeredLP(gamma=1.0),
    "slp": lambda: SpeakerListenerLP(seed=0),
}

ENGINES = {
    "dense": lambda: GLPEngine(),
    "frontier": lambda: GLPEngine(frontier="auto"),
}


def _assert_identical(baseline, sanitized):
    assert baseline.labels.tobytes() == sanitized.labels.tobytes()
    assert baseline.labels_hash() == sanitized.labels_hash()
    assert baseline.num_iterations == sanitized.num_iterations
    assert baseline.total_seconds == sanitized.total_seconds
    assert (
        baseline.total_counters.as_dict()
        == sanitized.total_counters.as_dict()
    )


@pytest.mark.parametrize("graph_name", ["rmat", "lfr"])
@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_sanitized_run_is_bitwise_identical(
    graphs, graph_name, program_name, engine_name
):
    graph = graphs[graph_name]
    baseline = ENGINES[engine_name]().run(
        graph, PROGRAMS[program_name](), max_iterations=5
    )
    with analysis.sanitize() as session:
        sanitized = ENGINES[engine_name]().run(
            graph, PROGRAMS[program_name](), max_iterations=5
        )
    _assert_identical(baseline, sanitized)
    report = session.report()
    # The pass actually inspected kernels and the shipped ones are clean.
    assert report.checked > 0
    assert report.findings == [], report.to_text()


def test_device_level_sanitizer_is_also_identity(graphs):
    from repro.gpusim.device import Device

    graph = graphs["rmat"]
    baseline = GLPEngine().run(graph, ClassicLP(), max_iterations=5)
    engine = GLPEngine(Device(sanitize=True))
    sanitized = engine.run(graph, ClassicLP(), max_iterations=5)
    _assert_identical(baseline, sanitized)
    assert engine.device.sanitizer_report().findings == []
