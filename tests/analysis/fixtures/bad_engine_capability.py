"""Fixture: interface contracts the static checker must reject.

Parsed, never executed.  ``BadIncrementalEngine`` advertises both
capability flags but its ``run`` accepts none of the keyword arguments
those capabilities imply (``contract-missing-capability-kwarg``, once per
missing kwarg).  ``BadHookProgram`` overrides the ``score`` hook with the
wrong positional arity (``contract-hook-signature-mismatch``).
"""

from __future__ import annotations


class BadIncrementalEngine:
    supports_incremental = True
    supports_recovery = True

    def run(self, graph, program, *, max_iterations=20):
        return None


class GoodEngine:
    supports_incremental = True

    def run(
        self,
        graph,
        program,
        *,
        max_iterations=20,
        initial_frontier=None,
        warm_labels=None,
    ):
        return None


class BadHookProgram(LPProgram):  # noqa: F821 -- parsed, never executed
    def score(self, vertex_ids, labels):
        return labels

    def update_vertices(self, vertex_ids, best_labels, best_scores, current_labels):
        return current_labels
