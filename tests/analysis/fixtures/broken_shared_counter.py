"""Fixture: a non-atomic shared-memory counter (the lost-update race).

Every lane bumps the same shared counter word with a plain load + store
instead of ``shared_atomic_add`` — the canonical CMS/HT counter bug.  The
sanitizer must flag it dynamically (``racecheck-non-atomic-rmw``) and the
linter statically (``lint-non-atomic-rmw``).
"""

from __future__ import annotations

import numpy as np

#: Declared word extent of the shared "counter" allocation.
COUNTER_WORDS = 8


def run_broken_shared_counter(device, num_lanes: int = 64) -> None:
    """Launch a kernel where ``num_lanes`` lanes RMW shared word 0."""
    addresses = np.zeros(num_lanes, dtype=np.int64)
    with device.launch("broken-shared-counter"):
        device.shared.load(addresses, array="counter", size=COUNTER_WORDS)
        device.shared.store(addresses, array="counter", size=COUNTER_WORDS)


def run_fixed_shared_counter(device, num_lanes: int = 64) -> None:
    """The correct version: one atomic add per lane — no hazard."""
    addresses = np.zeros(num_lanes, dtype=np.int64)
    with device.launch("fixed-shared-counter"):
        device.atomics.shared_atomic_add(
            addresses, array="counter", size=COUNTER_WORDS
        )
