"""Fixture: observability literals that drifted from the derived enums.

Parsed, never executed.  Each emit site below misspells a name that the
shipped code declares, so the consistency lint (path mode) must flag one
drift finding per site: a metric (``pipeline_windws_total`` vs
``pipeline_windows_total``), a journal event (``slide.detectt`` vs
``slide.detect``), an allocation category (``chekpoint`` — which is not
even a declared category anymore), and a finding rule
(``lint-imaginary-rule``).
"""

from __future__ import annotations

from repro import obs
from repro.analysis.findings import Finding
from repro.obs.memory import alloc_scope


def emit_drifted_telemetry() -> None:
    registry = obs.metrics()
    registry.inc("pipeline_windws_total")
    obs.emit("slide.detectt", window=1)
    with alloc_scope("chekpoint"):
        pass


def emit_drifted_rule() -> Finding:
    return Finding(rule="lint-imaginary-rule", message="never constructed")
