"""Fixture: static-only patterns every linter rule must flag.

This module is parsed, never executed — the bodies only need to be
syntactically plausible kernel/hook code.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.warp import ballot_sync
from repro.kernels.base import StrategyConfig


def update_vertices(self, vertices, labels, best_labels, best_scores):
    # In-place write to an input the framework still reads elsewhere.
    labels[vertices] = best_labels
    return labels


def pick_labels(self, vertices, labels):
    # Writing through an alias of an input is the same defect.
    view = labels
    view[vertices] = 0
    return view


def make_undersized_config():
    # depth 1 voids Lemma 2; width 64 < 2 * high_threshold (128 default).
    return StrategyConfig(cms_depth=1, cms_width=64)


def divergent_ballot(active, values, flags):
    if flags[0] > 0:
        return ballot_sync(active, values)
    return None


def read_uninitialized_tile(n):
    scratch = np.empty(n, dtype=np.int64)
    return scratch[0] + 1
