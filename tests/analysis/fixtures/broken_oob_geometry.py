"""Fixture: shared-memory launch geometries the interval verifier rejects.

Parsed, never executed.  ``run_broken_oob_geometry`` hashes labels modulo
``config.cms_width`` but declares a table of only ``config.ht_capacity``
words — for any geometry with ``cms_width > ht_capacity`` the access runs
off the end, so ``dataflow-oob-possible`` must fire on the atomic (the
upper-bound direction).  ``run_broken_negative_offset`` shifts a proven
in-bounds slot left by ``ht_capacity``, breaking the lower bound instead.
"""

from __future__ import annotations

import numpy as np


def run_broken_oob_geometry(ctx, edge_labels) -> None:
    """Hash mod cms_width into a table sized ht_capacity."""
    device = ctx.device
    config = ctx.config
    mixed = np.asarray(edge_labels).astype(np.uint64) * np.uint64(
        0x9E3779B97F4A7C15
    )
    slot = (mixed % np.uint64(config.cms_width)).astype(np.int64)
    with device.launch("broken-oob-geometry"):
        device.atomics.shared_atomic_add(
            slot,
            array="broken-ht",
            size=config.ht_capacity,
        )


def update_vertices(self, vertex_ids, best_labels, best_scores, current_labels):
    # Derives new labels arithmetically -- off the min-frequent-label
    # lattice (``dataflow-nonmonotone-update``).
    return (best_labels + current_labels) // 2


def run_broken_negative_offset(ctx, edge_labels) -> None:
    """Slot is bounded above but may be shifted below zero."""
    device = ctx.device
    config = ctx.config
    mixed = np.asarray(edge_labels).astype(np.uint64) * np.uint64(
        0x9E3779B97F4A7C15
    )
    slot = (mixed % np.uint64(config.ht_capacity)).astype(np.int64)
    shifted = slot - config.ht_capacity
    with device.launch("broken-negative-offset"):
        device.atomics.shared_atomic_add(
            shifted,
            array="broken-ht",
            size=config.ht_capacity,
        )
