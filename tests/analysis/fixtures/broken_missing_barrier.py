"""Fixture: a producer/consumer shared tile with a missing barrier.

Warp 0 fills a shared tile, warp 1 reads it back — with no
``device.barrier()`` in between the consumer can observe stale words.
The sanitizer must flag the unordered cross-warp read
(``racecheck-read-write``) and the linter the store→load phase pattern
(``lint-missing-barrier``); the ``fixed`` variant proves the barrier
silences both.
"""

from __future__ import annotations

import numpy as np

#: Word extent of the shared tile.
TILE_WORDS = 32


def run_broken_tile_kernel(device) -> None:
    """Store the tile from warp 0, load it from warp 1, no barrier."""
    addresses = np.arange(TILE_WORDS, dtype=np.int64)
    producer_warps = np.zeros(TILE_WORDS, dtype=np.int64)
    consumer_warps = np.ones(TILE_WORDS, dtype=np.int64)
    with device.launch("broken-tile"):
        device.shared.store(
            addresses, producer_warps, array="tile", size=TILE_WORDS
        )
        device.shared.load(
            addresses, consumer_warps, array="tile", size=TILE_WORDS
        )


def run_fixed_tile_kernel(device) -> None:
    """Same phases published through a barrier — hazard-free."""
    addresses = np.arange(TILE_WORDS, dtype=np.int64)
    producer_warps = np.zeros(TILE_WORDS, dtype=np.int64)
    consumer_warps = np.ones(TILE_WORDS, dtype=np.int64)
    with device.launch("fixed-tile"):
        device.shared.store(
            addresses, producer_warps, array="tile", size=TILE_WORDS
        )
        device.barrier()
        device.shared.load(
            addresses, consumer_warps, array="tile", size=TILE_WORDS
        )


def run_oob_tile_kernel(device) -> None:
    """Index one word past the declared tile extent."""
    addresses = np.array([TILE_WORDS], dtype=np.int64)
    with device.launch("oob-tile"):
        device.shared.store(addresses, array="tile", size=TILE_WORDS)
