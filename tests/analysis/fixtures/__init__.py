"""Deliberately broken kernels and hook patterns for the analysis tests.

Each module seeds one hazard class; the sanitizer and linter tests assert
the exact rule, kernel/array attribution, and location of every finding.
These files are never linted by ``repro check``'s default paths or the CI
sanitize-gate — only the tests point the tools at them.
"""
