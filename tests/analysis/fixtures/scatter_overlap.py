"""Fixture: a warning-only dataflow report (for the --fail-on matrix).

The store is provably in-bounds (hash mod the declared extent), so no
error fires — but it is a plain non-atomic scatter whose addresses are
not lane-disjoint, so ``dataflow-overlap-possible`` (warning) must.  The
linter finds nothing here, which makes this file the fixture that
separates ``--fail-on error`` (exit 0) from ``--fail-on warning``
(exit 1).
"""

from __future__ import annotations

import numpy as np


def run_scatter_overlap(device, labels) -> None:
    table_words = 128
    slot = (
        np.asarray(labels).astype(np.uint64) % np.uint64(table_words)
    ).astype(np.int64)
    with device.launch("scatter-overlap"):
        device.shared.store(slot, array="table", size=table_words)
