"""Interval dataflow verifier tests: proofs on shipped kernels, seeded bugs.

The shipped shared-memory kernels must come back *proven* (every access
site gets a ``dataflow-proven-clean`` info and zero errors); the seeded
fixtures must be rejected with the exact rule at the exact ``file:line``.
"""

from __future__ import annotations

import os

from repro.analysis import check_dataflow
from repro.analysis.dataflow import dataflow_file

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))


def _fixture_report(name):
    return check_dataflow([os.path.join(FIXTURES, name)])


def _line_of(name, needle, occurrence=1):
    """1-based line number of the n-th line containing ``needle``."""
    seen = 0
    with open(os.path.join(FIXTURES, name)) as fh:
        for lineno, line in enumerate(fh, start=1):
            if needle in line:
                seen += 1
                if seen == occurrence:
                    return lineno
    raise AssertionError(f"{needle!r} not found in {name}")


def test_upper_bound_violation_is_flagged():
    report = _fixture_report("broken_oob_geometry.py")
    oob = [f for f in report.findings if f.rule == "dataflow-oob-possible"]
    lineno = _line_of(
        "broken_oob_geometry.py", "device.atomics.shared_atomic_add(", 1
    )
    hits = [f for f in oob if f.location.endswith(f"broken_oob_geometry.py:{lineno}")]
    assert len(hits) == 1
    assert "upper bound" in hits[0].message


def test_lower_bound_violation_is_flagged():
    report = _fixture_report("broken_oob_geometry.py")
    oob = [f for f in report.findings if f.rule == "dataflow-oob-possible"]
    lineno = _line_of(
        "broken_oob_geometry.py", "device.atomics.shared_atomic_add(", 2
    )
    hits = [f for f in oob if f.location.endswith(f"broken_oob_geometry.py:{lineno}")]
    assert len(hits) == 1
    assert "lower bound" in hits[0].message


def test_nonmonotone_update_is_flagged():
    report = _fixture_report("broken_oob_geometry.py")
    (finding,) = [
        f for f in report.findings if f.rule == "dataflow-nonmonotone-update"
    ]
    lineno = _line_of(
        "broken_oob_geometry.py", "(best_labels + current_labels) // 2"
    )
    assert finding.location.endswith(f"broken_oob_geometry.py:{lineno}")


def test_scatter_overlap_fixture_warns_but_proves_bounds():
    report = _fixture_report("scatter_overlap.py")
    assert report.errors == []
    (warning,) = report.warnings
    assert warning.rule == "dataflow-overlap-possible"
    lineno = _line_of("scatter_overlap.py", "device.shared.store(")
    assert warning.location.endswith(f"scatter_overlap.py:{lineno}")
    # The store is still in-bounds: hash mod the declared extent.
    proven = [f for f in report.infos if f.rule == "dataflow-proven-clean"]
    assert len(proven) == 1
    assert proven[0].location == warning.location


def test_shipped_kernels_are_proven_in_bounds():
    report = check_dataflow()
    assert report.source == "dataflow"
    assert report.errors == []
    assert report.warnings == []
    proven = [f for f in report.infos if f.rule == "dataflow-proven-clean"]
    by_file = {}
    for finding in proven:
        name = os.path.basename(finding.location.rsplit(":", 1)[0])
        by_file[name] = by_file.get(name, 0) + 1
    # Both smem_cms_ht sites (CMS rows + hash table) and the warp-centric
    # hash table must be individually proven.
    assert by_file.get("smem_cms_ht.py") == 2
    assert by_file.get("warp_centric.py") == 1
    assert report.checked >= 3


def test_shipped_update_hooks_are_monotone():
    for rel in (
        "src/repro/algorithms/labelrank.py",
        "src/repro/algorithms/seeded.py",
        "src/repro/algorithms/slp.py",
        "src/repro/core/api.py",
    ):
        path = os.path.join(REPO_ROOT, rel)
        if not os.path.exists(path):
            continue
        findings, _ = dataflow_file(path)
        nonmono = [f for f in findings if f.rule == "dataflow-nonmonotone-update"]
        assert nonmono == [], rel


def test_report_serialization_counts_proofs():
    report = check_dataflow()
    doc = report.as_dict()
    assert doc["source"] == "dataflow"
    assert doc["num_infos"] == len(report.infos)
    assert "proven" in report.to_text()
