"""The shipped kernels are hazard-free on every baseline scenario.

This is the acceptance gate behind ``repro run --sanitize`` in CI: the
standardized scenario suite (the same one the perf gate replays) must
produce zero sanitizer findings — any named-array race, sync, or OOB
hazard introduced into a kernel fails here with full attribution.
"""

from __future__ import annotations

import pytest

from repro import analysis
from repro.bench.baseline import run_scenario, scenario_names


@pytest.mark.parametrize("name", scenario_names())
def test_baseline_scenario_is_hazard_free(name):
    with analysis.sanitize() as session:
        run_scenario(name)
    report = session.report()
    assert report.checked > 0
    assert report.findings == [], report.to_text()
