"""Static linter tests: fixture patterns flagged, shipped code clean.

The fixtures under ``tests/analysis/fixtures/`` seed one instance of each
rule; the tests pin rule name and ``file:line`` attribution.  The
zero-findings tests over ``src/repro/kernels`` and ``examples/`` are the
regression guard behind the CI sanitize-gate.
"""

from __future__ import annotations

import importlib.util
import os

import pytest

from repro import analysis
from repro.algorithms import ClassicLP
from repro.analysis.findings import RULES, SCHEMA_VERSION

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))


def _fixture_findings(name):
    return analysis.lint_file(os.path.join(FIXTURES, name))


def _line_of(name, needle, occurrence=1):
    """1-based line number of the n-th line containing ``needle``."""
    seen = 0
    with open(os.path.join(FIXTURES, name)) as fh:
        for lineno, line in enumerate(fh, start=1):
            if needle in line:
                seen += 1
                if seen == occurrence:
                    return lineno
    raise AssertionError(f"{needle!r} not found in {name}")


def test_non_atomic_counter_pattern_is_flagged():
    findings = _fixture_findings("broken_shared_counter.py")
    (finding,) = [f for f in findings if f.rule == "lint-non-atomic-rmw"]
    assert finding.array == "counter"
    lineno = _line_of("broken_shared_counter.py", "device.shared.store")
    assert finding.location.endswith(
        f"broken_shared_counter.py:{lineno}"
    )


def test_missing_barrier_pattern_is_flagged_only_in_broken_kernel():
    findings = _fixture_findings("broken_missing_barrier.py")
    (finding,) = [f for f in findings if f.rule == "lint-missing-barrier"]
    assert finding.array == "tile"
    # The flagged load is the broken kernel's (first) one; the barriered
    # and store-only kernels stay clean.
    lineno = _line_of("broken_missing_barrier.py", "device.shared.load")
    assert finding.location.endswith(
        f"broken_missing_barrier.py:{lineno}"
    )
    assert [f.rule for f in findings] == ["lint-missing-barrier"]


def test_bad_patterns_cover_the_remaining_rules():
    findings = _fixture_findings("bad_lint_patterns.py")
    counts = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    assert counts == {
        "lint-inplace-output-write": 2,   # direct write + aliased write
        "lint-sketch-bounds": 2,          # cms_depth=1 and cms_width=64
        "lint-divergent-warp-sync": 1,
        "lint-uninitialized-read": 1,
    }
    (divergent,) = [
        f for f in findings if f.rule == "lint-divergent-warp-sync"
    ]
    lineno = _line_of("bad_lint_patterns.py", "return ballot_sync")
    assert divergent.location.endswith(f"bad_lint_patterns.py:{lineno}")


def test_line_suppression_silences_a_rule():
    source = (
        "def kernel(device, addr):\n"
        "    device.shared.load(addr, array='t', size=4)\n"
        "    device.shared.store(addr, array='t', size=4)"
        "  # lint: disable=lint-non-atomic-rmw\n"
    )
    assert analysis.lint_source(source) == []
    # Without the directive the same source is flagged.
    assert analysis.lint_source(source.replace(
        "  # lint: disable=lint-non-atomic-rmw", ""
    ))


def test_file_suppression_silences_a_rule_everywhere():
    source = (
        "# lint: disable-file=lint-uninitialized-read\n"
        "import numpy as np\n"
        "def kernel(n):\n"
        "    buf = np.empty(n)\n"
        "    return buf[0]\n"
    )
    assert analysis.lint_source(source) == []


def test_shipped_kernels_and_examples_are_clean():
    report = analysis.lint_paths([
        os.path.join(REPO_ROOT, "src", "repro", "kernels"),
        os.path.join(REPO_ROOT, "examples"),
    ])
    assert report.checked > 0
    assert report.findings == [], report.to_text()


def test_lint_program_flags_a_bad_hook_and_passes_defaults():
    class BadProgram(ClassicLP):
        def update_vertices(
            self, vertex_ids, best_labels, best_scores, current_labels
        ):
            current_labels[vertex_ids] = best_labels
            return current_labels

    report = analysis.lint_program(BadProgram())
    assert [f.rule for f in report.findings] == [
        "lint-inplace-output-write"
    ]
    assert analysis.lint_program(ClassicLP()).findings == []


def _load_schema_checker():
    path = os.path.join(REPO_ROOT, "benchmarks", "check_obs_schema.py")
    spec = importlib.util.spec_from_file_location("check_obs_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_schema_checker_rule_enum_in_sync():
    checker = _load_schema_checker()
    assert checker.ANALYSIS_RULES == set(RULES)
    assert checker.ANALYSIS_SCHEMA_VERSION == SCHEMA_VERSION


def test_schema_checker_accepts_a_real_report(tmp_path, capsys):
    checker = _load_schema_checker()
    report = analysis.lint_paths([FIXTURES])
    assert report.has_hazards  # fixtures are not clean by design
    path = tmp_path / "lint.json"
    report.write(str(path))
    checker.check_analysis(str(path))  # sys.exit(1)s on violation
    assert "OK" in capsys.readouterr().out


def test_schema_checker_rejects_unknown_rule(tmp_path):
    checker = _load_schema_checker()
    report = analysis.lint_paths([FIXTURES])
    doc = report.as_dict()
    doc["findings"][0]["rule"] = "not-a-rule"
    path = tmp_path / "bad.json"
    import json

    path.write_text(json.dumps(doc))
    with pytest.raises(SystemExit):
        checker.check_analysis(str(path))


def test_disable_next_line_suppresses_a_wrapped_statement():
    # The flagged call is wrapped over several lines, so a trailing
    # ``# lint: disable=`` comment cannot reach it -- the directive goes
    # on its own line above instead.
    source = (
        "def kernel(device, addr):\n"
        "    device.shared.load(addr, array='t', size=4)\n"
        "    # lint: disable-next-line=lint-non-atomic-rmw\n"
        "    device.shared.store(\n"
        "        addr,\n"
        "        array='t',\n"
        "        size=4,\n"
        "    )\n"
    )
    assert analysis.lint_source(source) == []
    # Without the directive the same source is flagged.
    stripped = source.replace(
        "    # lint: disable-next-line=lint-non-atomic-rmw\n", ""
    )
    assert [f.rule for f in analysis.lint_source(stripped)] == [
        "lint-non-atomic-rmw"
    ]


def test_disable_next_line_directives_stack():
    source = (
        "import numpy as np\n"
        "def kernel(device, n, addr):\n"
        "    buf = np.empty(n)\n"
        "    device.shared.load(addr, array='t', size=4)\n"
        "    # lint: disable-next-line=lint-non-atomic-rmw\n"
        "    # lint: disable-next-line=lint-uninitialized-read\n"
        "    device.shared.store(buf, array='t', size=4)\n"
    )
    assert analysis.lint_source(source) == []


def test_disable_next_line_does_not_leak_past_its_line():
    source = (
        "def kernel(device, addr):\n"
        "    device.shared.load(addr, array='t', size=4)\n"
        "    # lint: disable-next-line=lint-non-atomic-rmw\n"
        "    x = addr\n"
        "    device.shared.store(x, array='t', size=4)\n"
    )
    assert [f.rule for f in analysis.lint_source(source)] == [
        "lint-non-atomic-rmw"
    ]
