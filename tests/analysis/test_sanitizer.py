"""Dynamic sanitizer tests against the seeded broken-kernel fixtures.

Every fixture hazard must be flagged with exact attribution (rule, kernel,
array, space, offset) and every ``fixed`` variant must come back clean —
the two halves of the racecheck contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import analysis
from repro.gpusim import warp
from repro.gpusim.config import DeviceSpec
from repro.gpusim.device import Device

from tests.analysis.fixtures import (
    broken_missing_barrier,
    broken_shared_counter,
)


def _report(device):
    report = device.sanitizer_report()
    assert report is not None
    return report


def _only(report, rule):
    matches = [f for f in report.findings if f.rule == rule]
    assert len(matches) == 1, report.to_text()
    return matches[0]


class TestBrokenSharedCounter:
    def test_non_atomic_counter_is_flagged(self):
        device = Device(sanitize=True)
        broken_shared_counter.run_broken_shared_counter(device)
        report = _report(device)
        assert report.has_hazards
        finding = _only(report, "racecheck-non-atomic-rmw")
        assert finding.kernel == "broken-shared-counter"
        assert finding.array == "counter"
        assert finding.space == "shared"
        assert finding.offset == 0
        # A sample of conflicting (warp, lane) actors is attached.
        assert finding.actors
        assert all(len(actor) == 2 for actor in finding.actors)

    def test_atomic_counter_is_clean(self):
        device = Device(sanitize=True)
        broken_shared_counter.run_fixed_shared_counter(device)
        assert _report(device).findings == []


class TestBrokenTile:
    def test_missing_barrier_is_flagged(self):
        device = Device(sanitize=True)
        broken_missing_barrier.run_broken_tile_kernel(device)
        report = _report(device)
        finding = _only(report, "racecheck-read-write")
        assert finding.kernel == "broken-tile"
        assert finding.array == "tile"
        assert finding.space == "shared"
        # All 32 tile words race; they fold into one finding.
        assert finding.count == broken_missing_barrier.TILE_WORDS

    def test_barrier_orders_the_phases(self):
        device = Device(sanitize=True)
        broken_missing_barrier.run_fixed_tile_kernel(device)
        assert _report(device).findings == []

    def test_oob_shared_index_is_flagged(self):
        device = Device(sanitize=True)
        broken_missing_barrier.run_oob_tile_kernel(device)
        finding = _only(_report(device), "racecheck-oob-shared")
        assert finding.kernel == "oob-tile"
        assert finding.array == "tile"
        assert finding.offset == broken_missing_barrier.TILE_WORDS


class TestSynccheck:
    def test_empty_mask_intrinsic_is_flagged(self):
        device = Device(sanitize=True)
        active = np.zeros((2, 32), dtype=bool)
        active[1, 0] = True
        with device.launch("empty-ballot"):
            warp.ballot_sync(active, active)
        finding = _only(_report(device), "synccheck-empty-mask")
        assert finding.kernel == "empty-ballot"
        assert finding.array == "ballot_sync"

    def test_barrier_divergence_is_flagged(self):
        device = Device(sanitize=True)
        with device.launch("divergent-barrier"):
            device.barrier(expected_warps=4, arrived_warps=3)
        finding = _only(_report(device), "synccheck-barrier-divergence")
        assert finding.kernel == "divergent-barrier"

    def test_warp_reduce_max_empty_rows_are_supported(self):
        # Empty-active warps are documented to return the fill value, so
        # the sanitizer must NOT treat them like the *_sync intrinsics.
        device = Device(sanitize=True)
        values = np.arange(64, dtype=np.int64).reshape(2, 32)
        with device.launch("reduce-fill"):
            warp.warp_reduce_max(np.zeros((2, 32), dtype=bool), values, -1)
        assert _report(device).findings == []


class TestScoping:
    def test_unnamed_traffic_is_never_checked(self):
        device = Device()
        with device.launch("unsanitized"):
            device.memory.load_sequential(128, 8)
        assert device.sanitizer_report() is None

    def test_per_launch_opt_in(self):
        device = Device()
        with device.launch("opted-in", sanitize=True):
            device.barrier(expected_warps=2, arrived_warps=1)
        assert _report(device).has_hazards

    def test_per_launch_opt_out_under_session(self):
        with analysis.sanitize() as session:
            device = Device()
            with device.launch("opted-out", sanitize=False):
                device.barrier(expected_warps=2, arrived_warps=1)
        assert session.report().findings == []

    def test_spec_level_opt_in(self):
        device = Device(DeviceSpec(sanitize=True))
        broken_shared_counter.run_broken_shared_counter(device)
        assert _report(device).has_hazards

    def test_ambient_session_spans_devices(self):
        with analysis.sanitize() as session:
            broken_shared_counter.run_broken_shared_counter(Device())
            broken_missing_barrier.run_broken_tile_kernel(Device())
        report = session.report()
        assert report.checked == 2
        rules = set(report.counts_by_rule())
        assert "racecheck-non-atomic-rmw" in rules
        assert "racecheck-read-write" in rules

    def test_sanitize_restores_previous_session(self):
        outer = analysis.enable_sanitizer()
        try:
            with analysis.sanitize() as inner:
                assert analysis.session_sanitizer() is inner
            assert analysis.session_sanitizer() is outer
        finally:
            analysis.disable_sanitizer()


def test_report_serialization_roundtrip(tmp_path):
    import json

    device = Device(sanitize=True)
    broken_shared_counter.run_broken_shared_counter(device)
    report = _report(device)
    path = tmp_path / "report.json"
    report.write(str(path))
    doc = json.loads(path.read_text())
    assert doc["schema_version"] == analysis.SCHEMA_VERSION
    assert doc["source"] == "sanitizer"
    assert doc["num_errors"] == len(report.errors)
    assert doc["findings"][0]["rule"] in analysis.RULES
