"""Contract checker tests: shipped interfaces clean, seeded fixtures flagged.

The import-mode checks walk the real engine/program/registry/CLI surface
and must come back empty; the AST-mode fixture pins each rule to the
offending ``def`` line.
"""

from __future__ import annotations

import os

from repro.analysis import check_contracts
from repro.analysis.contracts import CAPABILITY_KWARGS, HOOK_ARITY

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")


def _fixture_report(name):
    return check_contracts([os.path.join(FIXTURES, name)])


def _line_of(name, needle, occurrence=1):
    """1-based line number of the n-th line containing ``needle``."""
    seen = 0
    with open(os.path.join(FIXTURES, name)) as fh:
        for lineno, line in enumerate(fh, start=1):
            if needle in line:
                seen += 1
                if seen == occurrence:
                    return lineno
    raise AssertionError(f"{needle!r} not found in {name}")


def test_missing_capability_kwargs_are_flagged_once_each():
    report = _fixture_report("bad_engine_capability.py")
    missing = [
        f for f in report.findings if f.rule == "contract-missing-capability-kwarg"
    ]
    # Both flags are set, so all four implied kwargs are missing.
    expected = sum(len(kwargs) for kwargs in CAPABILITY_KWARGS.values())
    assert len(missing) == expected == 4
    lineno = _line_of("bad_engine_capability.py", "def run(self, graph, program")
    for finding in missing:
        assert finding.location.endswith(f"bad_engine_capability.py:{lineno}")
        assert "BadIncrementalEngine" in finding.message
    flagged_kwargs = {
        kwarg
        for kwargs in CAPABILITY_KWARGS.values()
        for kwarg in kwargs
        if any(kwarg in f.message for f in missing)
    }
    assert flagged_kwargs == {
        "initial_frontier",
        "warm_labels",
        "retry_policy",
        "resume_from",
    }


def test_compliant_engine_in_same_fixture_is_not_flagged():
    report = _fixture_report("bad_engine_capability.py")
    assert not any("GoodEngine" in f.message for f in report.findings)


def test_hook_arity_mismatch_is_flagged():
    report = _fixture_report("bad_engine_capability.py")
    (finding,) = [
        f for f in report.findings if f.rule == "contract-hook-signature-mismatch"
    ]
    lineno = _line_of("bad_engine_capability.py", "def score(self, vertex_ids")
    assert finding.location.endswith(f"bad_engine_capability.py:{lineno}")
    assert "score" in finding.message
    # The correctly-spelled update_vertices override stays clean.
    assert "update_vertices" not in finding.message


def test_shipped_interfaces_are_contract_clean():
    report = check_contracts()
    assert report.source == "contracts"
    assert report.findings == []
    assert report.checked > 0


def test_hook_arity_table_matches_lp_program():
    from repro.core.api import LPProgram

    import inspect

    for hook, arity in HOOK_ARITY.items():
        params = inspect.signature(getattr(LPProgram, hook)).parameters
        positional = [
            p
            for p in params.values()
            if p.kind
            in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        assert len(positional) == arity, hook


def test_tampered_registry_subscriber_is_caught(monkeypatch):
    from repro.obs import memory as memory_mod

    class BadTracker(memory_mod.MemoryTracker):
        def on_free(self, device):  # drops the handle parameter
            return None

    monkeypatch.setattr(memory_mod, "MemoryTracker", BadTracker)
    report = check_contracts()
    mismatches = [
        f for f in report.findings if f.rule == "contract-registry-callback-mismatch"
    ]
    assert any("on_free" in f.message for f in mismatches)
