"""Analysis test fixtures."""

from __future__ import annotations

import pytest

from repro import analysis


@pytest.fixture(autouse=True)
def _no_sanitizer_leakage():
    """Every test starts and ends without an ambient sanitizer session."""
    analysis.disable_sanitizer()
    yield
    analysis.disable_sanitizer()
