"""Consistency lint tests: derived enums in sync, drifted literals flagged.

``benchmarks/obs_schema_enums.json`` is generated from the source tree
(``python -m repro.analysis.consistency --write ...``); these tests prove
the committed copy is fresh and that each class of drift is caught at its
emit site.
"""

from __future__ import annotations

import json
import os

from repro.analysis import check_consistency, derive_enums
from repro.analysis.findings import RULES
from repro.obs.memory import CATEGORIES

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
ENUMS_PATH = os.path.join(REPO_ROOT, "benchmarks", "obs_schema_enums.json")


def _fixture_report(name):
    return check_consistency([os.path.join(FIXTURES, name)])


def _line_of(name, needle, occurrence=1):
    """1-based line number of the n-th line containing ``needle``."""
    seen = 0
    with open(os.path.join(FIXTURES, name)) as fh:
        for lineno, line in enumerate(fh, start=1):
            if needle in line:
                seen += 1
                if seen == occurrence:
                    return lineno
    raise AssertionError(f"{needle!r} not found in {name}")


def _single(report, rule):
    (finding,) = [f for f in report.findings if f.rule == rule]
    return finding


def test_drifted_metric_name_is_flagged():
    report = _fixture_report("drifted_metric_name.py")
    finding = _single(report, "consistency-metric-drift")
    lineno = _line_of("drifted_metric_name.py", 'inc("pipeline_windws_total")')
    assert finding.location.endswith(f"drifted_metric_name.py:{lineno}")
    assert "pipeline_windws_total" in finding.message


def test_drifted_event_name_is_flagged():
    report = _fixture_report("drifted_metric_name.py")
    finding = _single(report, "consistency-event-drift")
    lineno = _line_of("drifted_metric_name.py", 'emit("slide.detectt"')
    assert finding.location.endswith(f"drifted_metric_name.py:{lineno}")


def test_drifted_category_and_rule_are_flagged():
    report = _fixture_report("drifted_metric_name.py")
    category = _single(report, "consistency-category-drift")
    assert category.location.endswith(
        "drifted_metric_name.py:%d" % _line_of("drifted_metric_name.py", 'alloc_scope("chekpoint")')
    )
    rule = _single(report, "consistency-rule-drift")
    assert rule.location.endswith(
        "drifted_metric_name.py:%d"
        % _line_of("drifted_metric_name.py", 'rule="lint-imaginary-rule"')
    )


def test_shipped_tree_has_no_drift():
    report = check_consistency()
    assert report.source == "consistency"
    assert report.findings == []
    assert report.checked > 0


def test_committed_enums_match_derivation():
    with open(ENUMS_PATH) as fh:
        committed = json.load(fh)
    assert committed == derive_enums()


def test_derived_enums_cover_declared_surfaces():
    enums = derive_enums()
    assert set(enums["analysis"]["rules"]) == set(RULES)
    assert set(enums["memory"]["categories"]) == set(CATEGORIES)
    assert "journal.meta" in enums["journal"]["events"]
    assert "slide.detect" in enums["journal"]["events"]
    assert any(name.endswith("_total") for name in enums["metrics"]["names"])


def test_declared_but_never_emitted_rule_is_drift(monkeypatch):
    from repro.analysis import findings as findings_mod

    monkeypatch.setitem(findings_mod.RULES, "lint-phantom-rule", "error")
    report = check_consistency()
    drift = [f for f in report.findings if f.rule == "consistency-rule-drift"]
    assert any("lint-phantom-rule" in f.message for f in drift)
