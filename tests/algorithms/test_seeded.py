"""Tests for seeded fraud LP."""

import numpy as np
import pytest

from repro import GLPEngine, SeededFraudLP
from repro.errors import ProgramError
from repro.graph.builder import GraphBuilder
from repro.graph.generators.community import fraud_ring_graph
from repro.types import NO_LABEL


def chain_graph(n):
    builder = GraphBuilder(num_vertices=n)
    for i in range(n - 1):
        builder.add_edge(i, i + 1)
    return builder.build(symmetrize=True)


class TestSeeding:
    def test_init_labels(self, two_cliques_graph):
        program = SeededFraudLP({0: 5, 7: 9})
        labels = program.init_labels(two_cliques_graph)
        assert labels[0] == 5
        assert labels[7] == 9
        assert (labels == NO_LABEL).sum() == 8

    def test_empty_seeds_rejected(self):
        with pytest.raises(ProgramError):
            SeededFraudLP({})

    def test_negative_label_rejected(self):
        with pytest.raises(ProgramError):
            SeededFraudLP({0: -2})

    def test_out_of_range_seed_rejected(self, triangle_graph):
        program = SeededFraudLP({99: 1})
        with pytest.raises(ProgramError):
            program.init_labels(triangle_graph)

    def test_invalid_max_hops(self):
        with pytest.raises(ProgramError):
            SeededFraudLP({0: 1}, max_hops=0)


class TestPropagation:
    def test_seeds_never_change(self, two_cliques_graph):
        program = SeededFraudLP({0: 100, 9: 200})
        result = GLPEngine().run(
            two_cliques_graph, program, max_iterations=10
        )
        assert result.labels[0] == 100
        assert result.labels[9] == 200

    def test_labels_spread_from_seeds(self, two_cliques_graph):
        program = SeededFraudLP({0: 100})
        result = GLPEngine().run(
            two_cliques_graph, program, max_iterations=10
        )
        # The seed's whole clique adopts its label.
        assert np.all(result.labels[:5] == 100)

    def test_unreachable_vertices_stay_unlabeled(self):
        # Two disconnected components, seed in the first.
        builder = GraphBuilder(num_vertices=6)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        builder.add_edge(3, 4)
        builder.add_edge(4, 5)
        graph = builder.build(symmetrize=True)
        program = SeededFraudLP({0: 7})
        result = GLPEngine().run(graph, program, max_iterations=10)
        assert np.all(result.labels[:3] == 7)
        assert np.all(result.labels[3:] == NO_LABEL)

    def test_max_hops_bounds_iterations(self):
        graph = chain_graph(20)
        program = SeededFraudLP({0: 7}, max_hops=3)
        result = GLPEngine().run(graph, program, max_iterations=20)
        assert result.num_iterations == 3
        # A 3-iteration propagation reaches exactly distance 3.
        assert result.labels[3] == 7
        assert result.labels[4] == NO_LABEL

    def test_competing_seeds_cover_graph(self):
        graph = chain_graph(11)
        program = SeededFraudLP({0: 1, 10: 2})
        result = GLPEngine().run(graph, program, max_iterations=20)
        # Deterministic tie-breaking favors the smaller label, so label 1
        # wins every boundary tie and advances up to the pinned seed.
        assert result.labels[1] == 1
        assert result.labels[10] == 2  # the seed itself never flips
        assert np.all(result.labels[1:10] == 1)
        # No vertex is left unlabeled.
        assert (result.labels == NO_LABEL).sum() == 0

    def test_clusters_extraction(self, two_cliques_graph):
        program = SeededFraudLP({0: 100, 9: 200})
        result = GLPEngine().run(
            two_cliques_graph, program, max_iterations=10
        )
        clusters = program.clusters(result.labels)
        assert set(clusters) == {100, 200}
        assert 0 in clusters[100]
        assert 9 in clusters[200]


class TestFraudRings:
    def test_rings_recovered_from_partial_seeds(self):
        graph, ring_id = fraud_ring_graph(
            1000, 6, 10, ring_density=0.9, seed=3
        )
        seeds = {}
        for ring in range(6):
            members = np.flatnonzero(ring_id == ring)
            seeds[int(members[0])] = ring
        program = SeededFraudLP(seeds, max_hops=4)
        result = GLPEngine().run(graph, program, max_iterations=10)
        # Most ring members adopt their ring's seed label.
        hits = 0
        total = 0
        for ring in range(6):
            members = np.flatnonzero(ring_id == ring)
            total += members.size
            hits += int((result.labels[members] == ring).sum())
        assert hits / total > 0.8
