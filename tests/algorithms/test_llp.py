"""Tests for layered LP."""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine, LayeredLP
from repro.errors import ProgramError


class TestLLPScore:
    def test_formula(self, triangle_graph):
        program = LayeredLP(gamma=2.0)
        labels = np.array([0, 0, 1], dtype=np.int64)
        program.init_state(triangle_graph, labels)
        # Label 0 volume=2, label 1 volume=1.
        scores = program.score(
            np.array([2, 2]),
            np.array([0, 1]),
            np.array([2.0, 1.0]),
        )
        # val = k - gamma * (v - k): label 0 -> 2 - 2*(2-2)=2;
        # label 1 -> 1 - 2*(1-1)=1.
        assert scores.tolist() == [2.0, 1.0]

    def test_popular_label_penalized(self, triangle_graph):
        program = LayeredLP(gamma=1.0)
        labels = np.array([0, 0, 0], dtype=np.int64)
        program.init_state(triangle_graph, labels)
        # k=1 occurrence of a label held by all 3 vertices: 1 - 1*(3-1) = -1.
        score = program.score(
            np.array([1]), np.array([0]), np.array([1.0])
        )[0]
        assert score == -1.0

    def test_gamma_zero_equals_classic(self, community_graph):
        graph, _ = community_graph
        classic = GLPEngine().run(
            graph, ClassicLP(), max_iterations=10, stop_on_convergence=False
        )
        llp = GLPEngine().run(
            graph, LayeredLP(gamma=0.0), max_iterations=10,
            stop_on_convergence=False,
        )
        assert np.array_equal(classic.labels, llp.labels)

    def test_negative_gamma_rejected(self):
        with pytest.raises(ProgramError):
            LayeredLP(gamma=-1.0)

    def test_volumes_track_iterations(self, community_graph):
        graph, _ = community_graph
        program = LayeredLP(gamma=1.0)
        GLPEngine().run(graph, program, max_iterations=5,
                        stop_on_convergence=False)
        assert program.label_volumes.sum() == graph.num_vertices


class TestLLPGranularity:
    def test_larger_gamma_finer_communities(self, community_graph):
        """The paper's motivation: LLP resists giant communities; a nonzero
        gamma yields more, smaller communities than classic LP (gamma=0).
        Beyond gamma ~1 the granularity saturates on small graphs."""
        graph, _ = community_graph
        result_classic = GLPEngine().run(
            graph, LayeredLP(gamma=0.0), max_iterations=15,
            stop_on_convergence=False,
        )
        result_fine = GLPEngine().run(
            graph, LayeredLP(gamma=4.0), max_iterations=15,
            stop_on_convergence=False,
        )
        n_classic = np.unique(result_classic.labels).size
        n_fine = np.unique(result_fine.labels).size
        assert n_fine > n_classic
        # Largest community shrinks too.
        largest_classic = np.bincount(result_classic.labels).max()
        largest_fine = np.bincount(result_fine.labels).max()
        assert largest_fine <= largest_classic

    def test_name_includes_gamma(self):
        assert "4" in LayeredLP(gamma=4).name
