"""Tests for the balanced LP extension variant."""

import numpy as np
import pytest

from repro import GLPEngine
from repro.algorithms import BalancedLP
from repro.errors import ProgramError


class TestConstruction:
    def test_round_robin_init(self, two_cliques_graph):
        program = BalancedLP(num_partitions=2)
        labels = program.init_labels(two_cliques_graph)
        assert np.bincount(labels).tolist() == [5, 5]

    def test_invalid_params(self):
        with pytest.raises(ProgramError):
            BalancedLP(0)
        with pytest.raises(ProgramError):
            BalancedLP(2, penalty=-1)
        with pytest.raises(ProgramError):
            BalancedLP(2, slack=-0.1)

    def test_more_partitions_than_vertices(self, triangle_graph):
        program = BalancedLP(10)
        labels = program.init_labels(triangle_graph)
        with pytest.raises(ProgramError):
            program.init_state(triangle_graph, labels)


class TestBalancing:
    def test_overflow_penalized_in_score(self, two_cliques_graph):
        program = BalancedLP(2, penalty=3.0, slack=0.0)
        labels = np.zeros(10, dtype=np.int64)  # everything in partition 0
        program.init_state(two_cliques_graph, labels)
        scores = program.score(
            np.array([0, 0]), np.array([0, 1]), np.array([2.0, 2.0])
        )
        # Partition 0 is overloaded -> lower score than empty partition 1.
        assert scores[0] < scores[1]

    def test_partitions_stay_balanced(self, community_graph):
        graph, _ = community_graph
        program = BalancedLP(num_partitions=4, penalty=6.0)
        GLPEngine().run(
            graph, program, max_iterations=15, stop_on_convergence=False
        )
        assert program.imbalance() < 1.6

    def test_locality_better_than_random(self, community_graph):
        """Balanced LP keeps neighbors together: the edge cut beats the
        round-robin starting point."""
        graph, _ = community_graph
        program = BalancedLP(num_partitions=4, penalty=6.0)
        initial = program.init_labels(graph)
        program.init_state(graph, initial)
        initial_cut = program.edge_cut_fraction(graph, initial)
        result = GLPEngine().run(
            graph, program, max_iterations=15, stop_on_convergence=False
        )
        final_cut = program.edge_cut_fraction(graph, result.labels)
        assert final_cut < initial_cut

    def test_higher_penalty_tighter_balance(self, community_graph):
        graph, _ = community_graph
        loose = BalancedLP(num_partitions=4, penalty=0.0)
        tight = BalancedLP(num_partitions=4, penalty=10.0)
        GLPEngine().run(graph, loose, max_iterations=12,
                        stop_on_convergence=False)
        GLPEngine().run(graph, tight, max_iterations=12,
                        stop_on_convergence=False)
        assert tight.imbalance() <= loose.imbalance() + 1e-9

    def test_sizes_sum_to_vertices(self, community_graph):
        graph, _ = community_graph
        program = BalancedLP(num_partitions=3)
        GLPEngine().run(graph, program, max_iterations=8,
                        stop_on_convergence=False)
        assert program.partition_sizes.sum() == graph.num_vertices

    def test_empty_graph_edge_cut(self, empty_graph):
        program = BalancedLP(2)
        labels = program.init_labels(empty_graph)
        assert program.edge_cut_fraction(empty_graph, labels) == 0.0
