"""Tests for the LabelRank extension variant."""

import numpy as np
import pytest

from repro import GLPEngine, LabelRankLP
from repro.errors import ProgramError


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ProgramError):
            LabelRankLP(inflation=0.5)
        with pytest.raises(ProgramError):
            LabelRankLP(cutoff=1.0)
        with pytest.raises(ProgramError):
            LabelRankLP(max_labels=0)


class TestDynamics:
    def test_finds_cliques(self, two_cliques_graph):
        result = GLPEngine().run(
            two_cliques_graph,
            LabelRankLP(inflation=1.5),
            max_iterations=30,
        )
        # Each clique coheres around a dominant label (a couple of border
        # stragglers are normal for soft-label dynamics), and the two
        # cliques end up with different majorities.
        left = np.bincount(result.labels[:5]).argmax()
        right = np.bincount(result.labels[5:]).argmax()
        assert left != right
        assert (result.labels[:5] == left).sum() >= 4
        assert (result.labels[5:] == right).sum() >= 4

    def test_recovers_planted_communities(self, community_graph):
        graph, truth = community_graph
        result = GLPEngine().run(
            graph, LabelRankLP(), max_iterations=25,
            stop_on_convergence=False,
        )
        correct = 0
        for label in np.unique(result.labels):
            members = truth[result.labels == label]
            correct += np.bincount(members).max()
        assert correct / graph.num_vertices > 0.8

    def test_distributions_stay_normalized(self, two_cliques_graph):
        program = LabelRankLP(max_labels=4)
        GLPEngine().run(
            two_cliques_graph, program, max_iterations=10,
            stop_on_convergence=False,
        )
        probs = program._dist_probs
        totals = probs.sum(axis=1)
        assert np.all((np.isclose(totals, 1.0)) | (totals == 0.0))

    def test_deterministic(self, community_graph):
        graph, _ = community_graph
        a = GLPEngine().run(
            graph, LabelRankLP(), max_iterations=10,
            stop_on_convergence=False,
        ).labels
        b = GLPEngine().run(
            graph, LabelRankLP(), max_iterations=10,
            stop_on_convergence=False,
        ).labels
        assert np.array_equal(a, b)

    def test_higher_inflation_sharpens(self, community_graph):
        """Stronger inflation concentrates distribution mass faster."""
        graph, _ = community_graph
        soft = LabelRankLP(inflation=1.1)
        sharp = LabelRankLP(inflation=2.5)
        GLPEngine().run(graph, soft, max_iterations=8,
                        stop_on_convergence=False)
        GLPEngine().run(graph, sharp, max_iterations=8,
                        stop_on_convergence=False)
        soft_mass = soft._dist_probs.max(axis=1).mean()
        sharp_mass = sharp._dist_probs.max(axis=1).mean()
        assert sharp_mass >= soft_mass
