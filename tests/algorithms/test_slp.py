"""Tests for speaker-listener LP (SLPA)."""

import numpy as np
import pytest

from repro import GLPEngine, SpeakerListenerLP
from repro.errors import ProgramError
from repro.types import NO_LABEL


class TestMemoryMechanics:
    def test_init_memory_seeded_with_own_label(self, triangle_graph):
        program = SpeakerListenerLP(max_labels=3)
        labels = program.init_labels(triangle_graph)
        program.init_state(triangle_graph, labels)
        mem_labels, mem_counts = program.memory
        assert mem_labels[:, 0].tolist() == [0, 1, 2]
        assert np.all(mem_counts[:, 0] == 1.0)
        assert np.all(mem_labels[:, 1:] == NO_LABEL)

    def test_listen_increments_existing(self, triangle_graph):
        program = SpeakerListenerLP(max_labels=3)
        labels = program.init_labels(triangle_graph)
        program.init_state(triangle_graph, labels)
        program.update_vertices(
            np.array([0]),
            np.array([0], dtype=np.int64),
            np.array([1.0]),
            labels,
        )
        _, mem_counts = program.memory
        assert mem_counts[0, 0] == 2.0

    def test_listen_inserts_new_label(self, triangle_graph):
        program = SpeakerListenerLP(max_labels=3)
        labels = program.init_labels(triangle_graph)
        program.init_state(triangle_graph, labels)
        program.update_vertices(
            np.array([0]),
            np.array([7], dtype=np.int64),
            np.array([1.0]),
            labels,
        )
        mem_labels, _ = program.memory
        assert 7 in mem_labels[0]

    def test_eviction_when_memory_full(self, triangle_graph):
        program = SpeakerListenerLP(max_labels=2)
        labels = program.init_labels(triangle_graph)
        program.init_state(triangle_graph, labels)
        for new_label in (10, 11, 12):
            program.update_vertices(
                np.array([0]),
                np.array([new_label], dtype=np.int64),
                np.array([1.0]),
                labels,
            )
        mem_labels, _ = program.memory
        assert mem_labels[0].size == 2
        assert 12 in mem_labels[0]

    def test_invalid_parameters(self):
        with pytest.raises(ProgramError):
            SpeakerListenerLP(max_labels=0)
        with pytest.raises(ProgramError):
            SpeakerListenerLP(prune_threshold=1.0)


class TestSpeaking:
    def test_spoken_labels_come_from_memory(self, two_cliques_graph):
        program = SpeakerListenerLP(max_labels=5, seed=3)
        labels = program.init_labels(two_cliques_graph)
        program.init_state(two_cliques_graph, labels)
        spoken = program.pick_labels(two_cliques_graph, labels, 1)
        mem_labels, _ = program.memory
        for v in range(two_cliques_graph.num_vertices):
            assert spoken[v] in mem_labels[v]

    def test_deterministic_given_seed(self, two_cliques_graph):
        runs = []
        for _ in range(2):
            program = SpeakerListenerLP(seed=11)
            result = GLPEngine().run(
                two_cliques_graph, program, max_iterations=10,
                stop_on_convergence=False,
            )
            runs.append(result.labels)
        assert np.array_equal(runs[0], runs[1])

    def test_never_converges_flag(self):
        program = SpeakerListenerLP()
        labels = np.array([1, 2], dtype=np.int64)
        assert not program.converged(labels, labels.copy(), 5)


class TestCommunities:
    def test_finds_two_cliques(self, two_cliques_graph):
        program = SpeakerListenerLP(max_labels=5, seed=0)
        result = GLPEngine().run(
            two_cliques_graph, program, max_iterations=30,
            stop_on_convergence=False,
        )
        # The two cliques end dominated by different labels.
        left = np.unique(result.labels[:5])
        right = np.unique(result.labels[5:])
        assert left.size <= 2 and right.size <= 2

    def test_overlapping_output_structure(self, two_cliques_graph):
        program = SpeakerListenerLP(max_labels=5, seed=0)
        GLPEngine().run(
            two_cliques_graph, program, max_iterations=20,
            stop_on_convergence=False,
        )
        communities = program.overlapping_communities()
        assert communities  # non-empty
        members = [v for vs in communities.values() for v in vs]
        assert set(members) <= set(range(10))

    def test_max_labels_respected(self, community_graph):
        graph, _ = community_graph
        program = SpeakerListenerLP(max_labels=4, seed=1)
        GLPEngine().run(graph, program, max_iterations=10,
                        stop_on_convergence=False)
        mem_labels, _ = program.memory
        assert mem_labels.shape == (graph.num_vertices, 4)

    def test_pruning_drops_weak_labels(self, community_graph):
        graph, _ = community_graph
        strict = SpeakerListenerLP(max_labels=5, prune_threshold=0.4, seed=2)
        loose = SpeakerListenerLP(max_labels=5, prune_threshold=0.0, seed=2)
        GLPEngine().run(graph, strict, max_iterations=10,
                        stop_on_convergence=False)
        GLPEngine().run(graph, loose, max_iterations=10,
                        stop_on_convergence=False)
        strict_labels = (strict.memory[0] != NO_LABEL).sum()
        loose_labels = (loose.memory[0] != NO_LABEL).sum()
        assert strict_labels <= loose_labels
