"""Tests for classic LP semantics."""

import numpy as np

from repro import ClassicLP, GLPEngine
from repro.baselines import SerialEngine


class TestClassicLP:
    def test_recovers_planted_communities(self, community_graph):
        graph, truth = community_graph
        result = GLPEngine().run(graph, ClassicLP(), max_iterations=20)
        # Majority-purity of found communities vs ground truth.
        correct = 0
        for label in np.unique(result.labels):
            members = truth[result.labels == label]
            counts = np.bincount(members)
            correct += counts.max()
        assert correct / graph.num_vertices > 0.9

    def test_clique_converges_to_smallest_id(self):
        """Deterministic tie-breaking pulls a clique to its smallest label."""
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder(num_vertices=5)
        for i in range(5):
            for j in range(i + 1, 5):
                builder.add_edge(i, j)
        graph = builder.build(symmetrize=True)
        result = SerialEngine().run(graph, ClassicLP(), max_iterations=20)
        assert np.unique(result.labels).size == 1

    def test_star_adopts_center_dynamics(self, star_graph):
        result = SerialEngine().run(
            star_graph, ClassicLP(), max_iterations=1,
            stop_on_convergence=False,
        )
        # After one synchronous round every leaf copies the hub's label (0)
        # and the hub takes the smallest leaf label (1).
        assert result.labels[1:].tolist() == [0] * 8
        assert result.labels[0] == 1

    def test_frontier_safe_flag(self):
        assert ClassicLP().frontier_safe

    def test_iteration_count_bounded(self, community_graph):
        graph, _ = community_graph
        result = GLPEngine().run(graph, ClassicLP(), max_iterations=30)
        assert result.num_iterations <= 30

    def test_labels_always_valid_vertex_ids(self, powerlaw_graph):
        result = GLPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=10,
            stop_on_convergence=False,
        )
        assert result.labels.min() >= 0
        assert result.labels.max() < powerlaw_graph.num_vertices
