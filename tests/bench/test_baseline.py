"""Tests for the benchmark baseline / regression-gating layer.

The differential test required by the issue lives here: a perturbed
payload must make the comparator (and the CLI gate) fail non-zero while
naming the offending field.  Only the cheap ``dense_classic`` scenario
actually runs; the expensive window scenarios are exercised by the CI
perf-gate job, not tier-1.
"""

import json

import pytest

from repro.bench.baseline import (
    COUNTER_FIELDS,
    DEFAULT_TOLERANCES,
    EXACT_FIELDS,
    SCENARIOS,
    _parse_toml_minimal,
    baseline_path,
    compare_against_baselines,
    compare_payloads,
    get_scenario,
    load_baseline,
    load_tolerance_config,
    run_scenario,
    scenario_names,
    tolerances_for,
    write_baseline,
)
from repro.cli import main
from repro.errors import BenchmarkError
from repro.obs.advisor import KERNEL_VERDICTS


@pytest.fixture(scope="module")
def payload():
    """One cheap scenario run, shared across the module."""
    return run_scenario("dense_classic")


class TestRegistry:
    def test_suite_covers_the_execution_modes(self):
        names = scenario_names()
        # dense vs frontier, the three variants, hybrid/multi-GPU, warm.
        for required in (
            "dense_classic",
            "frontier_classic",
            "dense_llp",
            "dense_slp",
            "hybrid_window",
            "multigpu_window",
            "warm_windows",
            "warm_windows_incremental",
        ):
            assert required in names

    def test_names_unique_and_described(self):
        assert len(scenario_names()) == len(set(scenario_names()))
        for scenario in SCENARIOS:
            assert scenario.description

    def test_unknown_scenario_rejected(self):
        with pytest.raises(BenchmarkError):
            get_scenario("nope")


class TestPayloadSchema:
    def test_exact_fields_present(self, payload):
        for key in EXACT_FIELDS:
            assert key in payload, key

    def test_counters_present(self, payload):
        for key in COUNTER_FIELDS:
            assert key in payload["counters"], key

    def test_advisor_section(self, payload):
        advisor = payload["advisor"]
        assert advisor["verdicts"]
        assert set(advisor["verdicts"].values()) <= KERNEL_VERDICTS
        assert 0.0 <= advisor["transfer_fraction"] <= 1.0

    def test_deterministic_across_runs(self, payload):
        again = run_scenario("dense_classic")
        assert compare_payloads(payload, again, DEFAULT_TOLERANCES) == []
        assert payload["labels_hash"] == again["labels_hash"]
        assert payload["total_seconds"] == again["total_seconds"]

    def test_json_serializable(self, payload):
        json.dumps(payload)


class TestBaselineFiles:
    def test_write_and_load_round_trip(self, tmp_path, payload):
        path = write_baseline(tmp_path, payload)
        assert path == baseline_path(tmp_path, "dense_classic")
        assert path.name == "BENCH_dense_classic.json"
        assert load_baseline(tmp_path, "dense_classic") == payload

    def test_missing_baseline_named_in_error(self, tmp_path):
        with pytest.raises(BenchmarkError, match="dense_classic"):
            load_baseline(tmp_path, "dense_classic")


class TestCompare:
    def test_identical_payload_passes(self, payload):
        import copy

        fresh = copy.deepcopy(payload)
        assert compare_payloads(payload, fresh, DEFAULT_TOLERANCES) == []

    def test_drift_within_band_passes(self, payload):
        import copy

        fresh = copy.deepcopy(payload)
        fresh["total_seconds"] *= 1.01
        assert compare_payloads(payload, fresh, DEFAULT_TOLERANCES) == []

    @pytest.mark.parametrize(
        "mutate, field",
        [
            (lambda p: p.update(labels_hash="deadbeef"), "labels_hash"),
            (lambda p: p.update(iterations=p["iterations"] + 1),
             "iterations"),
            (lambda p: p.update(
                total_seconds=p["total_seconds"] * 1.2), "total_seconds"),
            (lambda p: p["counters"].update(
                global_transactions=p["counters"]["global_transactions"] * 2
            ), "counters.global_transactions"),
            (lambda p: p["advisor"]["verdicts"].update(
                {next(iter(p["advisor"]["verdicts"])): "latency-bound"}
            ), "advisor.verdicts"),
        ],
    )
    def test_perturbation_names_offending_field(
        self, payload, mutate, field
    ):
        import copy

        fresh = copy.deepcopy(payload)
        mutate(fresh)
        violations = compare_payloads(payload, fresh, DEFAULT_TOLERANCES)
        assert violations
        assert any(v.startswith(field) for v in violations), violations

    def test_compare_against_baselines_uses_fresh_payloads(
        self, tmp_path, payload
    ):
        import copy

        write_baseline(tmp_path, payload)
        bad = copy.deepcopy(payload)
        bad["total_seconds"] *= 2.0
        outcome = compare_against_baselines(
            tmp_path,
            names=["dense_classic"],
            fresh_payloads={"dense_classic": bad},
        )
        assert outcome["dense_classic"]
        good = compare_against_baselines(
            tmp_path,
            names=["dense_classic"],
            fresh_payloads={"dense_classic": copy.deepcopy(payload)},
        )
        assert good["dense_classic"] == []


class TestToleranceConfig:
    def test_minimal_parser_matches_shape(self):
        doc = _parse_toml_minimal(
            "# comment\n"
            "[default]\n"
            "rel_tol_seconds = 0.05  # trailing\n"
            "flag = true\n"
            'name = "x"\n'
            "count = 3\n"
            "[scenarios.warm_windows]\n"
            "rel_tol_counters = 0.1\n"
        )
        assert doc["default"]["rel_tol_seconds"] == 0.05
        assert doc["default"]["flag"] is True
        assert doc["default"]["name"] == "x"
        assert doc["default"]["count"] == 3
        assert doc["scenarios"]["warm_windows"]["rel_tol_counters"] == 0.1

    def test_minimal_parser_agrees_with_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        from pathlib import Path

        text = Path("benchmarks/baseline_config.toml").read_text()
        assert _parse_toml_minimal(text) == tomllib.loads(text)

    def test_repo_config_loads_with_overrides(self):
        config = load_tolerance_config("benchmarks/baseline_config.toml")
        default = tolerances_for(config, "dense_classic")
        warm = tolerances_for(config, "warm_windows")
        assert default["rel_tol_seconds"] == 0.05
        assert warm["rel_tol_counters"] == 0.05
        assert warm["rel_tol_seconds"] == default["rel_tol_seconds"]

    def test_missing_config_rejected(self, tmp_path):
        with pytest.raises(BenchmarkError):
            load_tolerance_config(tmp_path / "absent.toml")

    def test_default_config_when_unset(self):
        config = load_tolerance_config(None)
        assert tolerances_for(config, "anything") == DEFAULT_TOLERANCES


class TestCLIGate:
    """The differential acceptance test: non-zero exit, field named."""

    def test_gate_passes_on_unchanged_payloads(
        self, tmp_path, payload, capsys
    ):
        write_baseline(tmp_path / "base", payload)
        write_baseline(tmp_path / "fresh", payload)
        code = main([
            "bench", "compare",
            "--scenario", "dense_classic",
            "--baseline-dir", str(tmp_path / "base"),
            "--fresh-dir", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_gate_fails_nonzero_and_names_field(
        self, tmp_path, payload, capsys
    ):
        import copy

        write_baseline(tmp_path / "base", payload)
        bad = copy.deepcopy(payload)
        bad["total_seconds"] *= 1.5
        write_baseline(tmp_path / "fresh", bad)
        code = main([
            "bench", "compare",
            "--scenario", "dense_classic",
            "--baseline-dir", str(tmp_path / "base"),
            "--fresh-dir", str(tmp_path / "fresh"),
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "total_seconds" in captured.out
        assert "total_seconds" in captured.err

    def test_bench_run_writes_payload_files(self, tmp_path, capsys):
        code = main([
            "bench", "run",
            "--scenario", "dense_classic",
            "--out-dir", str(tmp_path),
        ])
        assert code == 0
        path = baseline_path(tmp_path, "dense_classic")
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["scenario"] == "dense_classic"
