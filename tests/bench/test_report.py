"""Tests for the report renderers."""

from repro.bench.report import format_bar_series, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [("alpha", 1), ("b", 22)],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "===="
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows equally wide

    def test_number_formatting(self):
        text = format_table(["x"], [(1_234_567,), (0.00001,), (3.14159,)])
        assert "1,234,567" in text
        assert "1e-05" in text
        assert "3.14" in text

    def test_no_title(self):
        text = format_table(["a"], [(1,)])
        assert text.splitlines()[0].strip() == "a"


class TestFormatBarSeries:
    def test_bars_scale_with_values(self):
        text = format_bar_series(
            {"ds": {"fast": 10.0, "slow": 1.0}}, width=20
        )
        lines = {
            line.strip().split()[0]: line.count("#")
            for line in text.splitlines()
            if "#" in line
        }
        assert lines["fast"] > lines["slow"]
        assert lines["fast"] == 20

    def test_groups_listed(self):
        text = format_bar_series(
            {"g1": {"a": 1.0}, "g2": {"a": 2.0}}, title="T"
        )
        assert "g1:" in text and "g2:" in text
        assert text.splitlines()[0] == "T"

    def test_empty_series(self):
        assert format_bar_series({}) == ""


class TestRunnerHelpers:
    def test_speedups_over_baseline(self):
        from repro.bench.runner import SweepResult

        sweep = SweepResult(
            seconds={"ds": {"OMP": 2.0, "GLP": 0.5}},
            label_checksums={},
        )
        speedups = sweep.speedups_over("OMP")
        assert speedups["ds"]["GLP"] == 4.0
        assert speedups["ds"]["OMP"] == 1.0

    def test_missing_baseline_raises(self):
        import pytest

        from repro.bench.runner import SweepResult
        from repro.errors import BenchmarkError

        sweep = SweepResult(seconds={"ds": {"GLP": 1.0}}, label_checksums={})
        with pytest.raises(BenchmarkError):
            sweep.speedups_over("OMP")

    def test_unknown_approach_rejected(self, two_cliques_graph):
        import pytest

        from repro import ClassicLP
        from repro.bench.runner import run_approach
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            run_approach(
                "CUDA-9000", two_cliques_graph, ClassicLP, max_iterations=1
            )

    def test_sweep_detects_divergence(self, two_cliques_graph):
        """A broken engine is caught, not silently timed."""
        import numpy as np
        import pytest

        from repro import ClassicLP
        from repro.bench import runner
        from repro.errors import BenchmarkError

        class BrokenEngine:
            name = "Broken"

            def run(self, graph, program, **kwargs):
                from repro.core.results import LPResult

                return LPResult(
                    labels=np.full(graph.num_vertices, 7, dtype=np.int64),
                    iterations=[],
                    converged=True,
                )

        original = dict(runner.APPROACH_FACTORIES)
        runner.APPROACH_FACTORIES["Broken"] = BrokenEngine
        try:
            with pytest.raises(BenchmarkError, match="diverged"):
                runner.sweep(
                    {"g": two_cliques_graph},
                    ["OMP", "Broken"],
                    ClassicLP,
                    max_iterations=2,
                )
        finally:
            runner.APPROACH_FACTORIES.clear()
            runner.APPROACH_FACTORIES.update(original)
