"""Property-based tests for kernel internals (packing, strategy equality)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ClassicLP
from repro.graph.builder import from_edge_arrays
from repro.gpusim.device import Device
from repro.kernels.base import KernelContext, StrategyConfig
from repro.kernels.global_hash import run_global_hash
from repro.kernels.smem_cms_ht import run_smem_cms_ht
from repro.kernels.warp_centric import _pack_lanes, run_warp_multi
from repro.types import LABEL_DTYPE


@st.composite
def degree_arrays(draw):
    return np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=80),
                min_size=1,
                max_size=40,
            )
        ),
        dtype=np.int64,
    )


class TestPackingInvariants:
    @given(degree_arrays())
    @settings(max_examples=100, deadline=None)
    def test_every_edge_gets_a_slot(self, degrees):
        vertices = np.arange(degrees.size, dtype=np.int64)
        order = np.lexsort((vertices, degrees))
        edge_warp, edge_lane, num_warps = _pack_lanes(
            degrees[order], vertices[order], 32
        )
        assert edge_warp.size == int(degrees.sum())
        if edge_warp.size:
            assert edge_warp.max() < num_warps
            assert edge_lane.min() >= 0
            assert edge_lane.max() < 32

    @given(degree_arrays())
    @settings(max_examples=100, deadline=None)
    def test_no_two_edges_share_a_lane_slot(self, degrees):
        vertices = np.arange(degrees.size, dtype=np.int64)
        order = np.lexsort((vertices, degrees))
        edge_warp, edge_lane, _ = _pack_lanes(
            degrees[order], vertices[order], 32
        )
        slots = edge_warp * 32 + edge_lane
        assert np.unique(slots).size == slots.size

    @given(degree_arrays())
    @settings(max_examples=100, deadline=None)
    def test_small_vertices_never_split_across_warps(self, degrees):
        """Whole-vertex placement: match_any can only count frequencies of
        values sitting in one warp."""
        vertices = np.arange(degrees.size, dtype=np.int64)
        order = np.lexsort((vertices, degrees))
        sorted_degrees = degrees[order]
        edge_warp, _, _ = _pack_lanes(sorted_degrees, vertices[order], 32)
        position = 0
        for d in sorted_degrees:
            d = int(d)
            if d == 0:
                continue
            warps = set(edge_warp[position : position + d].tolist())
            if d <= 32:
                assert len(warps) == 1
            else:
                assert len(warps) == -(-d // 32)
            position += d

    @given(degree_arrays())
    @settings(max_examples=60, deadline=None)
    def test_packing_efficiency_bound(self, degrees):
        """Degree-binned packing wastes less than half the lanes overall
        for nonzero-degree work (floor(32/d)*d >= 17 lanes busy)."""
        nonzero = degrees[(degrees > 0) & (degrees < 32)]
        if nonzero.sum() < 32:
            return
        vertices = np.arange(degrees.size, dtype=np.int64)
        order = np.lexsort((vertices, degrees))
        _, _, num_warps = _pack_lanes(degrees[order], vertices[order], 32)
        total_edges = int(degrees.sum())
        # Lane slots provisioned vs edges placed.
        assert num_warps * 32 < 4 * total_edges + 64


@st.composite
def random_graph_and_labels(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    m = draw(st.integers(min_value=0, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    num_labels = draw(st.integers(min_value=1, max_value=8))
    rng = np.random.default_rng(seed)
    graph = from_edge_arrays(
        rng.integers(0, n, m), rng.integers(0, n, m), n, symmetrize=True
    )
    labels = rng.integers(0, num_labels, n).astype(LABEL_DTYPE)
    return graph, labels


class TestStrategyEquality:
    @given(
        random_graph_and_labels(),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_smem_exact_for_any_ht_size(self, data, ht_capacity, cms_depth):
        """The CMS+HT procedure is exact no matter how undersized the
        shared structures are — it is a pruning strategy, never an
        approximation (paper Section 4.1, 'Special Note')."""
        graph, labels = data
        vertices = np.flatnonzero(graph.degrees > 0).astype(np.int64)
        if vertices.size == 0:
            return
        config = StrategyConfig(
            ht_capacity=ht_capacity, cms_depth=cms_depth, cms_width=8
        )
        ref = run_global_hash(
            KernelContext(Device(), graph, labels, ClassicLP()), vertices
        )
        got = run_smem_cms_ht(
            KernelContext(Device(), graph, labels, ClassicLP(), config),
            vertices,
        )
        assert np.array_equal(got[0], ref[0])
        assert np.allclose(got[1], ref[1])

    @given(random_graph_and_labels())
    @settings(max_examples=50, deadline=None)
    def test_warp_multi_exact(self, data):
        graph, labels = data
        vertices = np.flatnonzero(graph.degrees < 32).astype(np.int64)
        if vertices.size == 0:
            return
        ref = run_global_hash(
            KernelContext(Device(), graph, labels, ClassicLP()), vertices
        )
        got = run_warp_multi(
            KernelContext(Device(), graph, labels, ClassicLP()), vertices
        )
        assert np.array_equal(got[0], ref[0])
