"""Property-based tests for the sketch data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.countmin import CountMinSketch
from repro.sketch.globalhash import GlobalHashTable
from repro.sketch.hashtable import FixedCapacityHashTable, resident_prefix

label_sequences = st.lists(
    st.integers(min_value=0, max_value=30), min_size=0, max_size=120
)


class TestCMSProperties:
    @given(
        label_sequences,
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=4, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_underestimates(self, labels, depth, width):
        """The one-sided error guarantee the MFL pruning depends on."""
        sketch = CountMinSketch(depth, width)
        if labels:
            sketch.add(np.array(labels, dtype=np.int64))
        true_counts = {}
        for label in labels:
            true_counts[label] = true_counts.get(label, 0) + 1
        for label, count in true_counts.items():
            assert sketch.estimate(np.array([label]))[0] >= count

    @given(label_sequences)
    @settings(max_examples=40, deadline=None)
    def test_linearity(self, labels):
        """Adding in one batch equals adding one by one."""
        if not labels:
            return
        arr = np.array(labels, dtype=np.int64)
        batch = CountMinSketch(3, 32)
        batch.add(arr)
        single = CountMinSketch(3, 32)
        for label in labels:
            single.add(np.array([label], dtype=np.int64))
        probe = np.unique(arr)
        assert np.array_equal(batch.estimate(probe), single.estimate(probe))


class TestHashTableProperties:
    @given(label_sequences, st.integers(min_value=1, max_value=16))
    @settings(max_examples=80, deadline=None)
    def test_resident_set_is_first_distinct_prefix(self, labels, capacity):
        table = FixedCapacityHashTable(capacity)
        for label in labels:
            table.insert(int(label))
        seen = []
        for label in labels:
            if label not in seen:
                seen.append(label)
        expected_resident, _ = resident_prefix(
            np.array(seen, dtype=np.int64), capacity
        )
        resident, _ = table.items()
        assert set(resident.tolist()) == set(expected_resident.tolist())

    @given(label_sequences, st.integers(min_value=1, max_value=16))
    @settings(max_examples=80, deadline=None)
    def test_resident_counts_exact(self, labels, capacity):
        table = FixedCapacityHashTable(capacity)
        for label in labels:
            table.insert(int(label))
        resident, counts = table.items()
        for label, count in zip(resident, counts):
            assert count == labels.count(int(label))

    @given(label_sequences)
    @settings(max_examples=40, deadline=None)
    def test_size_never_exceeds_capacity(self, labels):
        table = FixedCapacityHashTable(5)
        for label in labels:
            table.insert(int(label))
        assert table.size <= 5


class TestGlobalHashProperties:
    @given(label_sequences)
    @settings(max_examples=60, deadline=None)
    def test_counts_match_ground_truth(self, labels):
        if not labels:
            return
        arr = np.array(labels, dtype=np.int64)
        table = GlobalHashTable.for_expected_keys(max(1, arr.size))
        table.add_batch(arr)
        unique, expected = np.unique(arr, return_counts=True)
        assert np.array_equal(table.estimate(unique), expected)

    @given(label_sequences, label_sequences)
    @settings(max_examples=40, deadline=None)
    def test_incremental_equals_batch(self, first, second):
        combined = np.array(first + second, dtype=np.int64)
        if combined.size == 0:
            return
        incremental = GlobalHashTable.for_expected_keys(combined.size)
        if first:
            incremental.add_batch(np.array(first, dtype=np.int64))
        if second:
            incremental.add_batch(np.array(second, dtype=np.int64))
        oneshot = GlobalHashTable.for_expected_keys(combined.size)
        oneshot.add_batch(combined)
        probe = np.unique(combined)
        assert np.array_equal(
            incremental.estimate(probe), oneshot.estimate(probe)
        )
