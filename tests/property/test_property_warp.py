"""Property-based tests for the warp intrinsics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import warp


@st.composite
def warp_states(draw, warp_size=16):
    """(active, values) for a single warp."""
    active = draw(
        st.lists(st.booleans(), min_size=warp_size, max_size=warp_size)
    )
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=5),
            min_size=warp_size,
            max_size=warp_size,
        )
    )
    return (
        np.array([active], dtype=bool),
        np.array([values], dtype=np.int64),
    )


class TestMatchAnyProperties:
    @given(warp_states())
    @settings(max_examples=100, deadline=None)
    def test_reflexive_on_active_lanes(self, state):
        active, values = state
        masks = warp.match_any_sync(active, values)
        for lane in range(active.shape[1]):
            if active[0, lane]:
                assert masks[0, lane] & (1 << lane)
            else:
                assert masks[0, lane] == 0

    @given(warp_states())
    @settings(max_examples=100, deadline=None)
    def test_symmetric(self, state):
        active, values = state
        masks = warp.match_any_sync(active, values)
        n = active.shape[1]
        for i in range(n):
            for j in range(n):
                if active[0, i] and active[0, j]:
                    assert bool(masks[0, i] & (1 << j)) == bool(
                        masks[0, j] & (1 << i)
                    )

    @given(warp_states())
    @settings(max_examples=100, deadline=None)
    def test_popc_equals_group_size(self, state):
        """popc(lmask) = the true frequency of the lane's value — the basis
        of the Section 4.2 counting trick."""
        active, values = state
        masks = warp.match_any_sync(active, values)
        counts = warp.popc(masks)
        for lane in range(active.shape[1]):
            if active[0, lane]:
                expected = sum(
                    1
                    for other in range(active.shape[1])
                    if active[0, other]
                    and values[0, other] == values[0, lane]
                )
                assert counts[0, lane] == expected

    @given(warp_states())
    @settings(max_examples=60, deadline=None)
    def test_groups_partition_active_lanes(self, state):
        active, values = state
        masks = warp.match_any_sync(active, values)
        distinct_masks = {int(m) for m in masks[0] if m}
        union = 0
        for mask in distinct_masks:
            assert (union & mask) == 0 or any(
                (mask == other) for other in distinct_masks
            )
        union = 0
        for mask in distinct_masks:
            union |= mask
        expected_union = int(warp.ballot_sync(active, active)[0])
        assert union == expected_union


class TestBallotProperties:
    @given(warp_states())
    @settings(max_examples=100, deadline=None)
    def test_ballot_popcount_counts_true_lanes(self, state):
        active, values = state
        predicate = values % 2 == 0
        mask = warp.ballot_sync(active, predicate)
        expected = int((active[0] & predicate[0]).sum())
        assert warp.popc(mask)[0] == expected

    @given(warp_states())
    @settings(max_examples=60, deadline=None)
    def test_ballot_subset_of_activemask(self, state):
        active, values = state
        full = warp.ballot_sync(active, np.ones_like(active))
        partial = warp.ballot_sync(active, values > 2)
        assert (int(partial[0]) & ~int(full[0])) == 0
