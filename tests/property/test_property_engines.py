"""Property-based differential tests across engines.

For random graphs and random iteration budgets, every engine — CPU serial,
the GPU strategies, hybrid and multi-GPU — must produce identical labels
for the deterministic programs.  This is the strongest correctness
statement the reproduction makes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClassicLP, GLPEngine, LayeredLP
from repro.baselines import GHashEngine, GSortEngine, SerialEngine
from repro.core.hybrid import HybridEngine
from repro.core.multigpu import MultiGPUEngine
from repro.graph.builder import from_edge_arrays
from repro.gpusim.config import TITAN_V
from repro.kernels.base import StrategyConfig


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    m = draw(st.integers(min_value=0, max_value=150))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    symmetrize = draw(st.booleans())
    return from_edge_arrays(src, dst, n, symmetrize=symmetrize)


@given(random_graphs(), st.integers(min_value=1, max_value=6))
@settings(max_examples=25, deadline=None)
def test_all_engines_agree_on_classic_lp(graph, iterations):
    reference = SerialEngine().run(
        graph, ClassicLP(), max_iterations=iterations,
        stop_on_convergence=False,
    ).labels
    engines = [
        GLPEngine(),
        GSortEngine(),
        GHashEngine(),
        MultiGPUEngine(2),
        HybridEngine(
            spec=TITAN_V.with_memory(
                max(8192, graph.nbytes // 2 + (graph.num_vertices + 1) * 48)
            )
        ),
    ]
    for engine in engines:
        labels = engine.run(
            graph, ClassicLP(), max_iterations=iterations,
            stop_on_convergence=False,
        ).labels
        assert np.array_equal(labels, reference), type(engine).__name__


@given(
    random_graphs(),
    st.floats(min_value=0.0, max_value=8.0),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None)
def test_engines_agree_on_llp(graph, gamma, iterations):
    reference = SerialEngine().run(
        graph, LayeredLP(gamma=gamma), max_iterations=iterations,
        stop_on_convergence=False,
    ).labels
    for engine in (GLPEngine(), GSortEngine()):
        labels = engine.run(
            graph, LayeredLP(gamma=gamma), max_iterations=iterations,
            stop_on_convergence=False,
        ).labels
        assert np.array_equal(labels, reference)


@given(
    random_graphs(),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=2, max_value=64),
)
@settings(max_examples=15, deadline=None)
def test_glp_result_invariant_to_tuning_knobs(graph, cms_depth, ht_capacity):
    """The sketch dimensions are performance knobs; labels never change."""
    reference = GLPEngine().run(
        graph, ClassicLP(), max_iterations=4, stop_on_convergence=False
    ).labels
    tuned = GLPEngine(
        config=StrategyConfig(
            ht_capacity=ht_capacity,
            cms_depth=min(cms_depth, 8),
            cms_width=16,
            low_threshold=4,
            high_threshold=8,
        )
    ).run(
        graph, ClassicLP(), max_iterations=4, stop_on_convergence=False
    ).labels
    assert np.array_equal(tuned, reference)


@given(random_graphs())
@settings(max_examples=20, deadline=None)
def test_labels_remain_valid_vertex_ids(graph):
    result = GLPEngine().run(
        graph, ClassicLP(), max_iterations=5, stop_on_convergence=False
    )
    assert result.labels.min() >= 0
    assert result.labels.max() < graph.num_vertices
