"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder, from_edge_arrays


@st.composite
def edge_lists(draw, max_vertices=24, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=m, max_size=m,
        )
    )
    dst = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=m, max_size=m,
        )
    )
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


class TestBuilderInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_csr_structurally_valid(self, data):
        n, src, dst = data
        graph = from_edge_arrays(src, dst, n)
        assert graph.offsets[0] == 0
        assert graph.offsets[-1] == graph.num_edges
        assert np.all(np.diff(graph.offsets) >= 0)
        if graph.num_edges:
            assert graph.indices.min() >= 0
            assert graph.indices.max() < n

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_dedup_removes_duplicates_and_self_loops(self, data):
        n, src, dst = data
        graph = from_edge_arrays(src, dst, n)
        for v in range(n):
            nbrs = graph.neighbors(v)
            assert np.unique(nbrs).size == nbrs.size  # no duplicates
            assert v not in nbrs  # no self loops
            assert np.all(np.diff(nbrs) > 0)  # sorted

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_edges_preserved_modulo_dedup(self, data):
        n, src, dst = data
        graph = from_edge_arrays(src, dst, n)
        expected = {
            (int(d), int(s)) for s, d in zip(src, dst) if s != d
        }
        actual = set(graph.iter_edges())
        assert actual == expected

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_symmetrize_makes_undirected(self, data):
        n, src, dst = data
        graph = from_edge_arrays(src, dst, n, symmetrize=True)
        edges = set(graph.iter_edges())
        for v, u in edges:
            assert (u, v) in edges

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_reverse_is_involution(self, data):
        n, src, dst = data
        graph = from_edge_arrays(src, dst, n)
        double = graph.reversed().reversed()
        assert set(graph.iter_edges()) == set(double.iter_edges())

    @given(
        edge_lists(),
        st.lists(st.floats(min_value=0.1, max_value=10.0), max_size=80),
    )
    @settings(max_examples=40, deadline=None)
    def test_weight_mass_preserved(self, data, raw_weights):
        """Dedup sums duplicate weights, so total mass (minus dropped
        self-loops) is invariant."""
        n, src, dst = data
        weights = np.ones(src.size)
        take = min(len(raw_weights), src.size)
        weights[:take] = raw_weights[:take]
        graph = from_edge_arrays(src, dst, n, weights=weights)
        keep = src != dst
        if graph.weights is not None:
            np.testing.assert_allclose(
                graph.weights.sum(), weights[keep].sum()
            )


class TestPartitionInvariants:
    @given(edge_lists(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_balanced_partition_tiles(self, data, k):
        from repro.graph.partition import balanced_edge_partition

        n, src, dst = data
        graph = from_edge_arrays(src, dst, n)
        parts = balanced_edge_partition(graph, k)
        assert parts[0].start == 0
        assert parts[-1].stop == n
        assert sum(p.num_edges for p in parts) == graph.num_edges

    @given(edge_lists(), st.integers(min_value=1, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_edge_budget_partition_tiles(self, data, budget):
        from repro.graph.partition import partition_by_edge_count

        n, src, dst = data
        graph = from_edge_arrays(src, dst, n)
        parts = partition_by_edge_count(graph, budget)
        covered = sum(p.num_vertices for p in parts)
        assert covered == n
