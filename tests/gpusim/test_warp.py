"""Tests for the bit-exact warp intrinsics."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.gpusim import warp


def full(shape):
    return np.ones(shape, dtype=bool)


class TestBallotSync:
    def test_all_true(self):
        mask = warp.ballot_sync(full((1, 8)), full((1, 8)))
        assert mask[0] == 0xFF

    def test_predicate_subset(self):
        pred = np.array([[True, False, True, False]])
        mask = warp.ballot_sync(full((1, 4)), pred)
        assert mask[0] == 0b0101

    def test_inactive_lanes_excluded(self):
        active = np.array([[True, True, False, False]])
        mask = warp.ballot_sync(active, full((1, 4)))
        assert mask[0] == 0b0011

    def test_multiple_warps_independent(self):
        active = full((3, 4))
        pred = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [1, 1, 1, 1]], dtype=bool
        )
        masks = warp.ballot_sync(active, pred)
        assert masks.tolist() == [0b0001, 0b0010, 0b1111]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(KernelError):
            warp.ballot_sync(full((1, 4)), full((1, 5)))

    def test_requires_2d(self):
        with pytest.raises(KernelError):
            warp.ballot_sync(np.ones(4, dtype=bool), np.ones(4, dtype=bool))


class TestMatchAnySync:
    def test_paper_example(self):
        """The Figure 3 walk-through: warp of 10 lanes, vertices 1,2,3."""
        # Lanes 0-1: vertex 1; lanes 2-4: vertex 2; 5-8: vertex 3; 9 idle.
        vertex = np.array([[1, 1, 2, 2, 2, 3, 3, 3, 3, 0]])
        active = np.array([[True] * 9 + [False]])
        vmask = warp.match_any_sync(active, vertex)
        assert vmask[0, 0] == 0b0000000011
        assert vmask[0, 2] == 0b0000011100
        assert vmask[0, 5] == 0b0111100000
        assert vmask[0, 9] == 0  # idle lane

        # Labels: thread 2 holds label A of vertex 2; only thread 4 shares.
        label = np.array([[7, 7, 10, 11, 10, 20, 21, 20, 20, 0]])
        combined = vertex * 100 + label
        lmask = warp.match_any_sync(active, combined)
        assert lmask[0, 2] == 0b0000010100  # threads 2 and 4
        assert warp.popc(lmask)[0, 2] == 2  # frequency of label A at v2

    def test_all_distinct(self):
        values = np.arange(8).reshape(1, 8)
        masks = warp.match_any_sync(full((1, 8)), values)
        expected = [1 << i for i in range(8)]
        assert masks[0].tolist() == expected

    def test_all_equal(self):
        values = np.zeros((1, 8), dtype=np.int64)
        masks = warp.match_any_sync(full((1, 8)), values)
        assert all(m == 0xFF for m in masks[0])

    def test_inactive_lane_not_matched(self):
        values = np.zeros((1, 4), dtype=np.int64)
        active = np.array([[True, True, True, False]])
        masks = warp.match_any_sync(active, values)
        assert masks[0, 0] == 0b0111
        assert masks[0, 3] == 0


class TestPopcAndFfs:
    def test_popc_basic(self):
        assert warp.popc(np.array([0b1011], dtype=np.uint64))[0] == 3
        assert warp.popc(np.array([0], dtype=np.uint64))[0] == 0

    def test_popc_matches_python_bitcount(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**63, size=50, dtype=np.uint64)
        counts = warp.popc(values)
        for value, count in zip(values, counts):
            assert count == bin(int(value)).count("1")

    def test_ffs(self):
        assert warp.ffs(np.array([0b1000], dtype=np.uint64))[0] == 4
        assert warp.ffs(np.array([1], dtype=np.uint64))[0] == 1
        assert warp.ffs(np.array([0], dtype=np.uint64))[0] == 0

    def test_lane_masks_lt(self):
        masks = warp.lane_masks_lt(4)
        assert masks.tolist() == [0b0000, 0b0001, 0b0011, 0b0111]


class TestShuffles:
    def test_shfl_broadcast(self):
        values = np.array([[10, 20, 30, 40]])
        out = warp.shfl_sync(full((1, 4)), values, 2)
        assert out[0].tolist() == [30, 30, 30, 30]

    def test_shfl_bad_lane(self):
        with pytest.raises(KernelError):
            warp.shfl_sync(full((1, 4)), np.zeros((1, 4)), 4)

    def test_shfl_down(self):
        values = np.array([[1, 2, 3, 4]])
        out = warp.shfl_down_sync(full((1, 4)), values, 1)
        # Lanes past the end keep their own value (CUDA semantics).
        assert out[0].tolist() == [2, 3, 4, 4]

    def test_shfl_down_zero_delta(self):
        values = np.array([[1, 2, 3, 4]])
        out = warp.shfl_down_sync(full((1, 4)), values, 0)
        assert out[0].tolist() == [1, 2, 3, 4]

    def test_warp_reduce_max(self):
        values = np.array([[5.0, -1.0, 9.0, 2.0], [0.0, 0.0, 0.0, 0.0]])
        active = np.array(
            [[True, True, True, True], [False, False, False, False]]
        )
        out = warp.warp_reduce_max(active, values, -np.inf)
        assert out[0] == 9.0
        assert out[1] == -np.inf

    def test_full_mask(self):
        assert warp.full_mask(32) == 0xFFFFFFFF
        assert warp.full_mask(8) == 0xFF
