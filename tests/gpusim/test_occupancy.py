"""Tests for the occupancy estimator."""

import pytest

from repro.errors import KernelError
from repro.gpusim.config import TITAN_V
from repro.gpusim.occupancy import (
    MAX_WARPS_PER_SM,
    estimate_occupancy,
    strategy_occupancy,
)
from repro.kernels.base import GLP_DEFAULT, StrategyConfig


class TestEstimate:
    def test_warp_limited_without_shared(self):
        report = estimate_occupancy(256, 0)
        assert report.limiter == "warps"
        assert report.warps_per_sm == MAX_WARPS_PER_SM
        assert report.occupancy == 1.0

    def test_block_limited_for_tiny_blocks(self):
        report = estimate_occupancy(32, 0)
        assert report.limiter == "blocks"
        assert report.blocks_per_sm == 32
        assert report.occupancy == 0.5  # 32 blocks x 1 warp / 64 slots

    def test_shared_memory_limited(self):
        # Half the SM's shared memory per block -> 2 blocks resident.
        report = estimate_occupancy(256, TITAN_V.shared_mem_per_block // 2)
        assert report.limiter == "shared-memory"
        assert report.blocks_per_sm == 2

    def test_occupancy_decreases_with_shared_usage(self):
        small = estimate_occupancy(256, 8 * 1024)
        big = estimate_occupancy(256, 40 * 1024)
        assert big.occupancy <= small.occupancy

    def test_invalid_inputs(self):
        with pytest.raises(KernelError):
            estimate_occupancy(100, 0)  # not a warp multiple
        with pytest.raises(KernelError):
            estimate_occupancy(256, -1)
        with pytest.raises(KernelError):
            estimate_occupancy(256, TITAN_V.shared_mem_per_block + 1)


class TestStrategyOccupancy:
    def test_default_config_keeps_healthy_occupancy(self):
        """The paper's h=512/d=4/w=512 budget leaves several blocks per SM."""
        report = strategy_occupancy(GLP_DEFAULT)
        assert report.blocks_per_sm >= 4
        assert report.occupancy >= 0.5

    def test_oversized_sketches_tank_occupancy(self):
        greedy = StrategyConfig(
            ht_capacity=4096, cms_depth=8, cms_width=1024
        )
        report = strategy_occupancy(greedy)
        assert report.limiter == "shared-memory"
        assert report.occupancy < strategy_occupancy(GLP_DEFAULT).occupancy
