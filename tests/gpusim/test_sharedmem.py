"""Tests for the shared-memory bank-conflict model."""

import numpy as np
import pytest

from repro.errors import SharedMemoryError
from repro.gpusim.config import DeviceSpec
from repro.gpusim.counters import PerfCounters
from repro.gpusim.sharedmem import SharedMemoryModel, bank_conflict_replays


@pytest.fixture
def shared():
    counters = PerfCounters()
    return SharedMemoryModel(DeviceSpec(), counters), counters


class TestBankConflicts:
    def test_conflict_free_stride_one(self):
        # 32 lanes, consecutive words: each bank touched once.
        addresses = np.arange(32)
        warps = np.zeros(32, dtype=np.int64)
        assert bank_conflict_replays(addresses, warps, 32) == 0

    def test_stride_two_halves_banks(self):
        # Stride-2: words 0,2,...,62 -> banks 0,2,... each hit twice by
        # distinct addresses -> one replay.
        addresses = np.arange(32) * 2
        warps = np.zeros(32, dtype=np.int64)
        assert bank_conflict_replays(addresses, warps, 32) == 1

    def test_stride_32_worst_case(self):
        # All lanes in bank 0 with distinct addresses: 31 replays.
        addresses = np.arange(32) * 32
        warps = np.zeros(32, dtype=np.int64)
        assert bank_conflict_replays(addresses, warps, 32) == 31

    def test_same_address_broadcasts(self):
        # Identical addresses broadcast: no conflict.
        addresses = np.zeros(32, dtype=np.int64)
        warps = np.zeros(32, dtype=np.int64)
        assert bank_conflict_replays(addresses, warps, 32) == 0

    def test_per_warp_isolation(self):
        addresses = np.concatenate([np.arange(32) * 32, np.arange(32)])
        warps = np.concatenate(
            [np.zeros(32), np.ones(32)]
        ).astype(np.int64)
        assert bank_conflict_replays(addresses, warps, 32) == 31

    def test_empty(self):
        assert bank_conflict_replays(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        ) == 0


class TestSharedMemoryModel:
    def test_capacity_check(self, shared):
        model, _ = shared
        model.check_allocation(96 * 1024)  # exactly fits
        with pytest.raises(SharedMemoryError):
            model.check_allocation(96 * 1024 + 1)

    def test_load_counts_ops_and_conflicts(self, shared):
        model, counters = shared
        model.load(np.arange(32) * 32)
        assert counters.shared_load_ops == 32
        assert counters.shared_bank_conflicts == 31

    def test_store_counts_separately(self, shared):
        model, counters = shared
        model.store(np.arange(16))
        assert counters.shared_store_ops == 16
        assert counters.shared_load_ops == 0
        assert counters.shared_bank_conflicts == 0
