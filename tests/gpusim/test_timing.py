"""Tests for the roofline timing model and counters."""

import pytest

from repro.gpusim.config import TITAN_V
from repro.gpusim.counters import PerfCounters
from repro.gpusim.timing import (
    KernelTiming,
    compute_cycles,
    kernel_time,
    transfer_time,
)


class TestCounters:
    def test_add_and_copy(self):
        a = PerfCounters(global_load_transactions=5, warp_instructions=2)
        b = PerfCounters(global_load_transactions=3)
        c = a + b
        assert c.global_load_transactions == 8
        assert c.warp_instructions == 2
        assert a.global_load_transactions == 5  # inputs untouched

    def test_delta_since(self):
        base = PerfCounters(global_load_transactions=10)
        later = PerfCounters(global_load_transactions=25, warps_launched=4)
        delta = later.delta_since(base)
        assert delta.global_load_transactions == 15
        assert delta.warps_launched == 4

    def test_reset(self):
        counters = PerfCounters(h2d_bytes=100)
        counters.reset()
        assert counters.h2d_bytes == 0

    def test_global_transactions_property(self):
        counters = PerfCounters(
            global_load_transactions=1,
            global_store_transactions=2,
            global_atomic_ops=3,
        )
        assert counters.global_transactions == 6

    def test_lane_utilization(self):
        counters = PerfCounters(warp_instructions=10, active_lane_sum=160)
        assert counters.lane_utilization == 0.5
        assert PerfCounters().lane_utilization == 0.0

    def test_as_dict_roundtrip(self):
        counters = PerfCounters(shared_load_ops=7)
        assert counters.as_dict()["shared_load_ops"] == 7


class TestRoofline:
    def test_memory_bound_kernel(self):
        delta = PerfCounters(global_load_transactions=1_000_000)
        timing = kernel_time(delta, TITAN_V)
        assert timing.memory_bound
        expected = 1_000_000 * 32 / TITAN_V.mem_bandwidth
        assert timing.memory_seconds == pytest.approx(expected)
        assert timing.total_seconds >= timing.memory_seconds

    def test_compute_bound_kernel(self):
        delta = PerfCounters(warp_instructions=10_000_000)
        timing = kernel_time(delta, TITAN_V)
        assert not timing.memory_bound
        expected = 10_000_000 / TITAN_V.warp_throughput
        assert timing.compute_seconds == pytest.approx(expected)

    def test_max_not_sum(self):
        delta = PerfCounters(
            global_load_transactions=1_000_000,
            warp_instructions=10_000_000,
        )
        timing = kernel_time(delta, TITAN_V)
        assert timing.total_seconds == pytest.approx(
            max(timing.compute_seconds, timing.memory_seconds)
            + TITAN_V.kernel_launch_overhead
        )

    def test_atomic_serialization_costs_differ(self):
        shared = PerfCounters(shared_atomic_serialized_ops=1000)
        glob = PerfCounters(global_atomic_serialized_ops=1000)
        assert compute_cycles(glob, TITAN_V) > 5 * compute_cycles(
            shared, TITAN_V
        )

    def test_bank_conflicts_add_cycles(self):
        clean = PerfCounters(shared_load_ops=3200)
        conflicted = PerfCounters(
            shared_load_ops=3200, shared_bank_conflicts=3100
        )
        assert compute_cycles(conflicted, TITAN_V) > compute_cycles(
            clean, TITAN_V
        )

    def test_empty_kernel_costs_launch_overhead(self):
        timing = kernel_time(PerfCounters(), TITAN_V)
        assert timing.total_seconds == TITAN_V.kernel_launch_overhead


class TestTransferTime:
    def test_zero_bytes_free(self):
        assert transfer_time(0, TITAN_V) == 0.0

    def test_latency_plus_bandwidth(self):
        t = transfer_time(12_000_000, TITAN_V)
        assert t == pytest.approx(
            TITAN_V.pcie_latency + 12_000_000 / TITAN_V.pcie_bandwidth
        )

    def test_monotone_in_bytes(self):
        assert transfer_time(2_000, TITAN_V) > transfer_time(1_000, TITAN_V)
