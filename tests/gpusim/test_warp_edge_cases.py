"""Warp-intrinsic edge cases: empty masks, full divergence, single lanes.

The bit-exact intrinsics must keep CUDA's documented semantics on the
degenerate inputs the MFL packing can produce — and the sanitizer hookups
added for synccheck must not disturb them when no sanitizer is attached.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelError
from repro.gpusim import warp


class TestEmptyMasks:
    def test_ballot_all_inactive_is_zero(self):
        active = np.zeros((3, 32), dtype=bool)
        result = warp.ballot_sync(active, np.ones((3, 32), dtype=bool))
        assert result.dtype == np.uint64
        assert np.array_equal(result, np.zeros(3, dtype=np.uint64))

    def test_match_any_all_inactive_is_zero(self):
        active = np.zeros((2, 32), dtype=bool)
        values = np.arange(64).reshape(2, 32)
        assert not warp.match_any_sync(active, values).any()

    def test_shfl_down_all_inactive_keeps_values(self):
        active = np.zeros((1, 32), dtype=bool)
        values = np.arange(32).reshape(1, 32)
        out = warp.shfl_down_sync(active, values, 0)
        assert np.array_equal(out, values)

    def test_warp_reduce_max_empty_rows_return_fill(self):
        active = np.zeros((2, 32), dtype=bool)
        active[1, 7] = True
        values = np.arange(64, dtype=np.int64).reshape(2, 32)
        out = warp.warp_reduce_max(active, values, -5)
        assert out[0] == -5
        assert out[1] == values[1, 7]

    def test_zero_warp_grids_are_legal(self):
        active = np.zeros((0, 32), dtype=bool)
        assert warp.ballot_sync(active, active).shape == (0,)
        assert warp.match_any_sync(active, active).shape == (0, 32)


class TestFullDivergence:
    def test_match_any_distinct_values_gives_singleton_masks(self):
        # Every lane holds a unique value: each mask is the lane's own bit.
        active = np.ones((1, 32), dtype=bool)
        values = np.arange(32).reshape(1, 32)
        masks = warp.match_any_sync(active, values)
        expected = np.uint64(1) << np.arange(32, dtype=np.uint64)
        assert np.array_equal(masks[0], expected)
        assert np.array_equal(warp.popc(masks)[0], np.ones(32))

    def test_match_any_uniform_values_gives_full_masks(self):
        active = np.ones((1, 8), dtype=bool)
        values = np.zeros((1, 8))
        masks = warp.match_any_sync(active, values)
        assert np.array_equal(masks, np.full((1, 8), 255, dtype=np.uint64))

    def test_alternating_active_lanes_partition_the_ballot(self):
        active = np.zeros((1, 32), dtype=bool)
        active[0, ::2] = True
        predicate = np.ones((1, 32), dtype=bool)
        expected = sum(1 << i for i in range(0, 32, 2))
        assert warp.ballot_sync(active, predicate)[0] == expected


class TestSingleLane:
    def test_single_lane_warp_size_one(self):
        active = np.ones((4, 1), dtype=bool)
        values = np.arange(4).reshape(4, 1)
        assert np.array_equal(
            warp.ballot_sync(active, active), np.ones(4, dtype=np.uint64)
        )
        masks = warp.match_any_sync(active, values)
        assert np.array_equal(masks, np.ones((4, 1), dtype=np.uint64))

    def test_single_active_lane_matches_itself_only(self):
        active = np.zeros((1, 32), dtype=bool)
        active[0, 13] = True
        values = np.zeros((1, 32))
        masks = warp.match_any_sync(active, values)
        assert masks[0, 13] == np.uint64(1) << np.uint64(13)
        assert masks.sum() == masks[0, 13]

    def test_shfl_sync_broadcasts_single_source(self):
        active = np.ones((1, 4), dtype=bool)
        values = np.array([[7, 8, 9, 10]])
        out = warp.shfl_sync(active, values, 2)
        assert np.array_equal(out, np.full((1, 4), 9))

    def test_shfl_down_off_the_end_keeps_own_value(self):
        active = np.ones((1, 4), dtype=bool)
        values = np.array([[1, 2, 3, 4]])
        out = warp.shfl_down_sync(active, values, 2)
        assert np.array_equal(out, np.array([[3, 4, 3, 4]]))


class TestShapeChecks:
    def test_one_dimensional_input_rejected(self):
        with pytest.raises(KernelError):
            warp.ballot_sync(np.ones(32, dtype=bool), np.ones(32, dtype=bool))

    def test_oversized_warp_rejected(self):
        active = np.ones((1, 65), dtype=bool)
        with pytest.raises(KernelError):
            warp.ballot_sync(active, active)
