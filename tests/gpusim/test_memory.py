"""Tests for the global-memory coalescing model."""

import numpy as np
import pytest

from repro.gpusim.config import DeviceSpec
from repro.gpusim.counters import PerfCounters
from repro.gpusim.memory import (
    GlobalMemoryModel,
    count_sector_transactions,
    default_warp_ids,
)


@pytest.fixture
def model():
    counters = PerfCounters()
    return GlobalMemoryModel(DeviceSpec(), counters), counters


class TestSectorCounting:
    def test_fully_coalesced_warp(self):
        # 32 consecutive 8-byte words = 256 bytes = 8 sectors of 32B.
        addresses = np.arange(32) * 8
        warps = np.zeros(32, dtype=np.int64)
        assert count_sector_transactions(addresses, warps, 32) == 8

    def test_fully_scattered_warp(self):
        # Each lane hits its own sector: 32 transactions.
        addresses = np.arange(32) * 4096
        warps = np.zeros(32, dtype=np.int64)
        assert count_sector_transactions(addresses, warps, 32) == 32

    def test_same_address_broadcast(self):
        addresses = np.zeros(32, dtype=np.int64)
        warps = np.zeros(32, dtype=np.int64)
        assert count_sector_transactions(addresses, warps, 32) == 1

    def test_two_warps_do_not_coalesce_together(self):
        addresses = np.zeros(64, dtype=np.int64)
        warps = np.concatenate([np.zeros(32), np.ones(32)]).astype(np.int64)
        assert count_sector_transactions(addresses, warps, 32) == 2

    def test_empty(self):
        assert count_sector_transactions(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 32
        ) == 0

    def test_huge_warp_ids_no_overflow(self):
        # Warp-step keys reach 2^40+; counting must not overflow.
        addresses = np.array([0, 0, 32, 32], dtype=np.int64)
        warps = np.array([1 << 45, 1 << 45, 1 << 45, 1 << 50], dtype=np.int64)
        assert count_sector_transactions(addresses, warps, 32) == 3

    def test_default_warp_ids(self):
        ids = default_warp_ids(70, 32)
        assert ids[0] == 0 and ids[31] == 0
        assert ids[32] == 1 and ids[69] == 2


class TestGlobalMemoryModel:
    def test_sequential_load_rounds_up(self, model):
        mem, counters = model
        assert mem.load_sequential(1, 8) == 1  # partial sector
        assert counters.global_load_transactions == 1

    def test_sequential_load_bulk(self, model):
        mem, counters = model
        transactions = mem.load_sequential(1000, 8)
        assert transactions == 250  # 8000 B / 32 B
        assert counters.global_load_transactions == 250

    def test_sequential_store(self, model):
        mem, counters = model
        mem.store_sequential(4, 8)
        assert counters.global_store_transactions == 1
        assert counters.global_load_transactions == 0

    def test_gather_counts_actual_sectors(self, model):
        mem, counters = model
        # Gather of consecutive indices = coalesced.
        coalesced = mem.load_gather(np.arange(32), 8)
        counters.reset()
        scattered = mem.load_gather(np.arange(32) * 1000, 8)
        assert scattered > coalesced

    def test_zero_elements(self, model):
        mem, counters = model
        assert mem.load_sequential(0, 8) == 0
        assert mem.load_gather(np.empty(0, dtype=np.int64), 8) == 0

    def test_load_segments(self, model):
        mem, counters = model
        # Two segments of 4 x 8B starting at aligned offsets: 1 sector each.
        n = mem.load_segments(
            np.array([0, 100]), np.array([4, 4]), 8
        )
        # Segment at element 100 -> byte 800, spans sector 25 only.
        assert n == 2

    def test_load_segments_unaligned_spans_two_sectors(self, model):
        mem, _ = model
        # 4 elements of 8B starting at element 3 -> bytes 24..56: sectors 0,1.
        n = mem.load_segments(np.array([3]), np.array([4]), 8)
        assert n == 2

    def test_load_segments_empty_segment_free(self, model):
        mem, _ = model
        assert mem.load_segments(np.array([5]), np.array([0]), 8) == 0
