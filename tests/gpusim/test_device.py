"""Tests for device memory management, transfers and launch bookkeeping."""

import numpy as np
import pytest

from repro.errors import DeviceError, OutOfDeviceMemoryError
from repro.gpusim.config import DeviceSpec, TITAN_V, titan_v_scaled
from repro.gpusim.device import Device


@pytest.fixture
def tiny_device():
    return Device(TITAN_V.with_memory(1024))


class TestAllocation:
    def test_alloc_tracks_bytes(self, tiny_device):
        handle = tiny_device.alloc((10,), np.int64)
        assert tiny_device.allocated_bytes == 80
        assert tiny_device.free_bytes == 1024 - 80

    def test_alloc_over_capacity_raises(self, tiny_device):
        with pytest.raises(OutOfDeviceMemoryError):
            tiny_device.alloc((1000,), np.int64)

    def test_free_releases(self, tiny_device):
        handle = tiny_device.alloc((10,), np.int64)
        tiny_device.free(handle)
        assert tiny_device.allocated_bytes == 0
        assert handle.freed

    def test_double_free_is_noop(self, tiny_device):
        handle = tiny_device.alloc((10,), np.int64)
        tiny_device.free(handle)
        tiny_device.free(handle)
        assert tiny_device.allocated_bytes == 0

    def test_foreign_handle_rejected(self, tiny_device):
        other = Device(TITAN_V)
        handle = other.alloc((10,), np.int64)
        with pytest.raises(DeviceError):
            tiny_device.free(handle)

    def test_fragmentation_recovery(self, tiny_device):
        handles = [tiny_device.alloc((10,), np.int64) for _ in range(12)]
        for handle in handles:
            tiny_device.free(handle)
        big = tiny_device.alloc((128,), np.int64)
        assert big.nbytes == 1024

    def test_free_all(self, tiny_device):
        for _ in range(3):
            tiny_device.alloc((10,), np.int64)
        tiny_device.free_all()
        assert tiny_device.allocated_bytes == 0

    def test_zeros(self):
        device = Device()
        handle = device.zeros((5,), np.float64)
        assert np.all(handle.data == 0.0)


class TestTransfers:
    def test_h2d_copies_and_times(self):
        device = Device()
        host = np.arange(1000)
        handle = device.h2d(host)
        assert np.array_equal(handle.data, host)
        assert device.counters.h2d_bytes == host.nbytes
        assert device.transfer_seconds > 0
        # The device copy is independent of the host array.
        host[0] = 999
        assert handle.data[0] == 0

    def test_d2h_roundtrip(self):
        device = Device()
        handle = device.h2d(np.arange(10))
        back = device.d2h(handle)
        assert np.array_equal(back, np.arange(10))
        assert device.counters.d2h_bytes == back.nbytes

    def test_d2h_freed_array_rejected(self):
        device = Device()
        handle = device.h2d(np.arange(10))
        device.free(handle)
        with pytest.raises(DeviceError):
            device.d2h(handle)

    def test_transfer_time_scales_with_bytes(self):
        device = Device()
        a = device.h2d(np.zeros(100))
        t_small = device.transfer_seconds
        device.h2d(np.zeros(100_000))
        assert device.transfer_seconds > 10 * t_small


class TestLaunchBookkeeping:
    def test_launch_records_timeline(self):
        device = Device()
        with device.launch("k1"):
            device.memory.load_sequential(1000, 8)
        with device.launch("k2"):
            device.counters.warp_instructions += 500
        assert [r.name for r in device.timeline] == ["k1", "k2"]
        assert device.kernel_seconds > 0
        assert device.counters.kernel_launches == 2

    def test_kernel_breakdown_accumulates(self):
        device = Device()
        for _ in range(3):
            with device.launch("same"):
                device.memory.load_sequential(10, 8)
        breakdown = device.kernel_breakdown()
        assert set(breakdown) == {"same"}
        assert breakdown["same"] == pytest.approx(device.kernel_seconds)

    def test_reset_timing(self):
        device = Device()
        with device.launch("k"):
            device.memory.load_sequential(10, 8)
        device.h2d(np.zeros(10))
        device.reset_timing()
        assert device.kernel_seconds == 0
        assert device.transfer_seconds == 0
        assert device.counters.kernel_launches == 0

    def test_discount_transfer_clamps_at_zero(self):
        device = Device()
        device.h2d(np.zeros(1000))
        device.discount_transfer(100.0)
        assert device.transfer_seconds == 0.0
        with pytest.raises(DeviceError):
            device.discount_transfer(-1.0)


class TestSpecs:
    def test_scaled_spec(self):
        spec = titan_v_scaled(0.001)
        assert spec.global_mem_bytes == int(TITAN_V.global_mem_bytes * 0.001)
        assert spec.mem_bandwidth == TITAN_V.mem_bandwidth

    def test_scaled_spec_rejects_nonpositive(self):
        with pytest.raises(DeviceError):
            titan_v_scaled(0.0)

    def test_spec_validation(self):
        with pytest.raises(DeviceError):
            DeviceSpec(warp_size=31)
        with pytest.raises(DeviceError):
            DeviceSpec(num_sms=0)

    def test_with_memory(self):
        spec = TITAN_V.with_memory(123)
        assert spec.global_mem_bytes == 123
        assert spec.name == TITAN_V.name
