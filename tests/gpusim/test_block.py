"""Tests for thread-block helpers (BlockReduce)."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.gpusim.block import BlockConfig, block_reduce_max, block_reduce_max_cost
from repro.gpusim.config import TITAN_V
from repro.gpusim.counters import PerfCounters


class TestBlockConfig:
    def test_num_warps(self):
        assert BlockConfig(256).num_warps(32) == 8
        assert BlockConfig(33).num_warps(32) == 2
        assert BlockConfig(1).num_warps(32) == 1

    def test_invalid(self):
        with pytest.raises(KernelError):
            BlockConfig(0)


class TestBlockReduce:
    def test_functional_max(self):
        assert block_reduce_max(np.array([3.0, 9.0, 1.0]), -np.inf) == 9.0
        assert block_reduce_max(np.empty(0), -np.inf) == -np.inf

    def test_cost_accounting(self):
        counters = PerfCounters()
        block_reduce_max_cost(10, BlockConfig(256), TITAN_V, counters)
        assert counters.warp_instructions > 0
        assert counters.shared_store_ops == 10 * 8  # one partial per warp
        assert counters.shared_load_ops == 10 * 8

    def test_cost_scales_with_blocks(self):
        a, b = PerfCounters(), PerfCounters()
        block_reduce_max_cost(5, BlockConfig(256), TITAN_V, a)
        block_reduce_max_cost(10, BlockConfig(256), TITAN_V, b)
        assert b.warp_instructions == 2 * a.warp_instructions

    def test_zero_blocks_free(self):
        counters = PerfCounters()
        block_reduce_max_cost(0, BlockConfig(256), TITAN_V, counters)
        assert counters.warp_instructions == 0
