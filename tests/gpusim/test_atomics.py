"""Tests for the atomic serialization model."""

import numpy as np
import pytest

from repro.gpusim.atomics import AtomicsModel, serialization_cost
from repro.gpusim.config import DeviceSpec
from repro.gpusim.counters import PerfCounters


@pytest.fixture
def atomics():
    counters = PerfCounters()
    return AtomicsModel(DeviceSpec(), counters), counters


class TestSerializationCost:
    def test_conflict_free_warp(self):
        # 32 lanes, 32 distinct addresses: one issue, no retries.
        addresses = np.arange(32)
        warps = np.zeros(32, dtype=np.int64)
        total, serialized = serialization_cost(addresses, warps)
        assert total == 32
        assert serialized == 1  # max multiplicity is 1

    def test_full_conflict_warp(self):
        # All 32 lanes hit the same counter: fully serialized.
        addresses = np.zeros(32, dtype=np.int64)
        warps = np.zeros(32, dtype=np.int64)
        _, serialized = serialization_cost(addresses, warps)
        assert serialized == 32

    def test_partial_conflict(self):
        addresses = np.array([0, 0, 0, 1, 1, 2])
        warps = np.zeros(6, dtype=np.int64)
        _, serialized = serialization_cost(addresses, warps)
        assert serialized == 3  # max multiplicity

    def test_per_warp_independence(self):
        addresses = np.array([0, 0, 0, 0])
        warps = np.array([0, 0, 1, 1])
        _, serialized = serialization_cost(addresses, warps)
        assert serialized == 4  # 2 per warp

    def test_empty(self):
        total, serialized = serialization_cost(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert (total, serialized) == (0, 0)

    def test_large_warp_ids_no_overflow(self):
        addresses = np.array([5, 5])
        warps = np.array([1 << 50, 1 << 50], dtype=np.int64)
        _, serialized = serialization_cost(addresses, warps)
        assert serialized == 2


class TestAtomicsModel:
    def test_global_atomic_counts_transactions(self, atomics):
        model, counters = atomics
        model.global_atomic_add(np.arange(32) * 100, 8)
        assert counters.global_atomic_ops > 0
        assert counters.global_atomic_serialized_ops >= 1
        assert counters.shared_atomic_serialized_ops == 0

    def test_global_atomic_conflicts_serialize(self, atomics):
        model, counters = atomics
        model.global_atomic_add(np.zeros(32, dtype=np.int64), 8)
        assert counters.global_atomic_serialized_ops == 32

    def test_shared_atomic_counts_ops(self, atomics):
        model, counters = atomics
        model.shared_atomic_add(np.array([0, 0, 1, 2]))
        assert counters.shared_store_ops == 4
        assert counters.shared_atomic_serialized_ops == 2
        assert counters.global_atomic_ops == 0

    def test_label_concentration_raises_serialization(self, atomics):
        """The mechanism behind Table 3: converged labels hammer the same
        counter, serializing global atomics."""
        model, counters = atomics
        rng = np.random.default_rng(0)
        diverse = rng.integers(0, 1000, 320)
        model.global_atomic_add(diverse, 8)
        diverse_cost = counters.global_atomic_serialized_ops

        counters.reset()
        concentrated = rng.integers(0, 3, 320)
        model.global_atomic_add(concentrated, 8)
        concentrated_cost = counters.global_atomic_serialized_ops
        assert concentrated_cost > 2 * diverse_cost
