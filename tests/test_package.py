"""Package-level tests: exports, errors, types and scaling conventions."""

import numpy as np
import pytest

import repro
from repro import errors, scaling, types


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_classes_importable(self):
        from repro import (
            ClassicLP,
            CSRGraph,
            Device,
            GLPEngine,
            GraphBuilder,
            LayeredLP,
            LPProgram,
            SeededFraudLP,
            SpeakerListenerLP,
        )

        assert issubclass(ClassicLP, LPProgram)


class TestErrorHierarchy:
    def test_all_derive_from_glperror(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.GLPError) or obj is errors.GLPError

    def test_device_errors_specialized(self):
        assert issubclass(errors.OutOfDeviceMemoryError, errors.DeviceError)
        assert issubclass(errors.SharedMemoryError, errors.KernelError)
        assert issubclass(errors.KernelError, errors.DeviceError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.GLPError):
            raise errors.GraphFormatError("bad file")


class TestTypes:
    def test_coercion_helpers(self):
        arr = types.as_vertex_array([1, 2, 3])
        assert arr.dtype == types.VERTEX_DTYPE
        arr = types.as_label_array(np.array([1.0, 2.0]))
        assert arr.dtype == types.LABEL_DTYPE
        arr = types.as_weight_array([1, 2])
        assert arr.dtype == types.WEIGHT_DTYPE

    def test_scalar_promoted_to_1d(self):
        assert types.as_vertex_array(5).shape == (1,)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            types.as_vertex_array(np.zeros((2, 2)))

    def test_no_label_sentinel(self):
        assert types.NO_LABEL == -1


class TestScaling:
    def test_scaled_latency(self):
        assert scaling.scaled_latency(1.0) == scaling.TIME_SCALE
        assert scaling.scaled_latency(2.0, scale=0.5) == 1.0

    def test_specs_use_the_scale(self):
        from repro.gpusim.config import TITAN_V

        assert TITAN_V.kernel_launch_overhead == pytest.approx(
            5e-6 * scaling.TIME_SCALE
        )
        assert TITAN_V.pcie_latency == pytest.approx(
            10e-6 * scaling.TIME_SCALE
        )
