"""Stress and adversarial-input tests across the stack."""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine, LPProgram
from repro.baselines import SerialEngine
from repro.errors import GLPError
from repro.graph.builder import GraphBuilder, from_edge_arrays
from repro.types import LABEL_DTYPE


def mega_star(leaves=3000):
    """A hub whose degree exceeds several thread blocks."""
    src = np.zeros(leaves, dtype=np.int64)
    dst = np.arange(1, leaves + 1, dtype=np.int64)
    return from_edge_arrays(src, dst, leaves + 1, symmetrize=True)


class TestExtremeDegrees:
    def test_mega_hub_through_all_kernels(self):
        graph = mega_star()
        gpu = GLPEngine().run(
            graph, ClassicLP(), max_iterations=4, stop_on_convergence=False
        )
        cpu = SerialEngine().run(
            graph, ClassicLP(), max_iterations=4, stop_on_convergence=False
        )
        assert np.array_equal(gpu.labels, cpu.labels)

    def test_hub_lands_in_high_bin(self):
        from repro.kernels.scheduler import bin_vertices_by_degree

        graph = mega_star()
        bins = bin_vertices_by_degree(graph)
        assert 0 in bins.high
        assert bins.low.size == graph.num_vertices - 1

    def test_complete_graph(self):
        n = 64
        iu, ju = np.triu_indices(n, k=1)
        graph = from_edge_arrays(iu, ju, n, symmetrize=True)
        result = GLPEngine().run(graph, ClassicLP(), max_iterations=5)
        # A clique converges to one label immediately.
        assert np.unique(result.labels).size == 1

    def test_self_loops_only_graph(self):
        builder = GraphBuilder(num_vertices=4)
        for v in range(4):
            builder.add_edge(v, v)
        graph = builder.build()  # loops dropped
        result = GLPEngine().run(graph, ClassicLP(), max_iterations=3)
        assert np.array_equal(result.labels, np.arange(4))

    def test_single_vertex(self):
        graph = from_edge_arrays(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 1
        )
        result = GLPEngine().run(graph, ClassicLP(), max_iterations=3)
        assert result.labels.tolist() == [0]
        assert result.converged


class TestAdversarialWeights:
    def test_zero_weight_edges_ignored_in_mfl(self):
        # v0 hears v1 (weight 0) and v2 (weight 1): v2's label must win.
        graph = from_edge_arrays(
            np.array([1, 2]),
            np.array([0, 0]),
            3,
            weights=np.array([0.0, 1.0]),
        )
        result = SerialEngine().run(
            graph, ClassicLP(), max_iterations=1, stop_on_convergence=False
        )
        assert result.labels[0] == 2

    def test_fractional_weights(self):
        graph = from_edge_arrays(
            np.array([1, 2, 2]),
            np.array([0, 0, 0]),
            3,
            weights=np.array([0.6, 0.25, 0.25]),
        )
        result = SerialEngine().run(
            graph, ClassicLP(), max_iterations=1, stop_on_convergence=False
        )
        # 0.6 for label 1 beats 0.5 for label 2.
        assert result.labels[0] == 1

    def test_gpu_matches_cpu_on_weighted(self):
        rng = np.random.default_rng(5)
        m = 400
        graph = from_edge_arrays(
            rng.integers(0, 50, m),
            rng.integers(0, 50, m),
            50,
            weights=rng.random(m) * 10,
            symmetrize=True,
        )
        gpu = GLPEngine().run(
            graph, ClassicLP(), max_iterations=6, stop_on_convergence=False
        )
        cpu = SerialEngine().run(
            graph, ClassicLP(), max_iterations=6, stop_on_convergence=False
        )
        assert np.array_equal(gpu.labels, cpu.labels)


class TestLabelSpaceLimits:
    def test_combine_keys_rejects_oversized_labels(self):
        from repro.sketch.globalhash import combine_keys

        with pytest.raises(GLPError):
            combine_keys(np.array([0]), np.array([1 << 31]))

    def test_custom_program_with_large_but_valid_labels(self):
        class BigLabels(LPProgram):
            def init_labels(self, graph):
                return (
                    np.arange(graph.num_vertices, dtype=LABEL_DTYPE)
                    + (1 << 30)
                )

        graph = from_edge_arrays(
            np.array([0, 1]), np.array([1, 2]), 3, symmetrize=True
        )
        result = GLPEngine().run(graph, BigLabels(), max_iterations=3)
        assert result.labels.min() >= 1 << 30


class TestOscillation:
    def test_bipartite_sync_oscillation_is_bounded(self):
        """Synchronous LP on an even cycle can oscillate; the engine must
        terminate at the budget without error."""
        n = 8
        src = np.arange(n)
        dst = (src + 1) % n
        graph = from_edge_arrays(src, dst, n, symmetrize=True)
        result = GLPEngine().run(
            graph, ClassicLP(), max_iterations=15
        )
        assert result.num_iterations <= 15
        assert result.labels.size == n
