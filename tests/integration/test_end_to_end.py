"""Integration tests: full flows across multiple subsystems."""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine, LayeredLP, SeededFraudLP
from repro.baselines import InHouseDistributedEngine, OMPEngine
from repro.core.hybrid import run_auto
from repro.graph.generators.datasets import load_dataset
from repro.gpusim.config import TITAN_V
from repro.pipeline import (
    ClusterDetector,
    FraudDetectionPipeline,
    SeedStore,
    TransactionStream,
    TransactionStreamConfig,
)
from repro.pipeline.window import build_window_graph


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=3000,
            num_products=1500,
            num_days=20,
            transactions_per_day=1200,
            num_rings=6,
            ring_size=10,
            seed=13,
        )
    )


class TestDatasetToEngine:
    def test_classic_lp_on_every_dataset(self):
        """Every Table 2 stand-in runs through GLP without error and
        produces sensible communities."""
        for name in ("dblp", "roadNet", "aligraph"):
            graph = load_dataset(name)
            result = GLPEngine().run(
                graph, ClassicLP(), max_iterations=5,
                stop_on_convergence=False,
            )
            assert result.labels.size == graph.num_vertices
            num_communities = np.unique(result.labels).size
            assert 1 <= num_communities <= graph.num_vertices

    def test_label_concentration_grows_over_iterations(self):
        """The Section 4.1 observation: neighborhoods concentrate as
        communities form, which is what makes CMS+HT effective."""
        from repro.graph.stats import neighborhood_label_concentration

        graph = load_dataset("dblp")
        result = GLPEngine().run(
            graph, ClassicLP(), max_iterations=8,
            stop_on_convergence=False, record_history=True,
        )
        early_ratio, _ = neighborhood_label_concentration(
            graph, result.history[0], sample=300, seed=0
        )
        late_ratio, late_share = neighborhood_label_concentration(
            graph, result.history[-1], sample=300, seed=0
        )
        assert late_ratio < early_ratio
        assert late_share > 0.5


class TestWindowToDetection:
    def test_stream_window_detect_score_cycle(self, stream):
        window = build_window_graph(stream, 0, 20)
        store = SeedStore(stream.blacklist())
        detector = ClusterDetector(GLPEngine(), max_iterations=12, max_hops=5)
        pipeline = FraudDetectionPipeline(stream, detector, seed_store=store)
        report = pipeline.run_on_window(window)
        assert report.metrics.f1 > 0.5
        assert report.lp_fraction < 0.6  # GLP: LP no longer dominates

    def test_engines_interchangeable_in_pipeline(self, stream):
        """The detector takes any engine; results are identical for the
        deterministic seeded program."""
        reports = {}
        for name, engine in (
            ("glp", GLPEngine()),
            ("omp", OMPEngine()),
            ("dist", InHouseDistributedEngine()),
        ):
            detector = ClusterDetector(engine, max_iterations=12, max_hops=5)
            pipeline = FraudDetectionPipeline(stream, detector)
            reports[name] = pipeline.run_window(20)
        assert (
            reports["glp"].num_clusters
            == reports["omp"].num_clusters
            == reports["dist"].num_clusters
        )
        # And the GPU is the fastest of the three on the LP stage.
        assert reports["glp"].lp_seconds < reports["omp"].lp_seconds
        assert reports["glp"].lp_seconds < reports["dist"].lp_seconds


class TestHybridAutoSwitch:
    def test_run_auto_crosses_memory_boundary(self, stream):
        """The same workload runs pure-GPU on a big device and hybrid on a
        small one, with identical labels."""
        window = build_window_graph(stream, 0, 20)
        raw = stream.blacklist()
        users = np.fromiter(raw.keys(), dtype=np.int64)
        labels = np.fromiter(raw.values(), dtype=np.int64)
        vertices = window.window_vertex_of_user(users)
        seeds = {
            int(v): int(l)
            for v, l in zip(vertices[vertices >= 0], labels[vertices >= 0])
        }

        big = TITAN_V
        small = TITAN_V.with_memory(int(window.graph.nbytes * 0.6))
        result_big, engine_big = run_auto(
            window.graph, SeededFraudLP(seeds), spec=big,
            max_iterations=10, stop_on_convergence=False,
        )
        result_small, engine_small = run_auto(
            window.graph, SeededFraudLP(seeds), spec=small,
            max_iterations=10, stop_on_convergence=False,
        )
        assert engine_big.name == "GLP"
        assert engine_small.name == "GLP-Hybrid"
        assert np.array_equal(result_big.labels, result_small.labels)


class TestVariantsOnRealWorkload:
    def test_llp_gives_finer_clusters_than_classic(self, stream):
        window = build_window_graph(stream, 0, 10)
        classic = GLPEngine().run(
            window.graph, ClassicLP(), max_iterations=8,
            stop_on_convergence=False,
        )
        llp = GLPEngine().run(
            window.graph, LayeredLP(gamma=2.0), max_iterations=8,
            stop_on_convergence=False,
        )
        assert (
            np.unique(llp.labels).size >= np.unique(classic.labels).size
        )
