"""Cross-validation against networkx's label propagation.

networkx ships an independent LPA implementation
(`asyn_lpa_communities`).  Its randomized asynchronous schedule means exact
label equality is not expected; instead we check that both implementations
recover the same *planted structure* (high NMI against ground truth and
against each other on strong communities).
"""

import numpy as np
import networkx as nx
import pytest

from repro import ClassicLP, GLPEngine
from repro.graph.generators.community import planted_partition_graph
from repro.graph.quality import normalized_mutual_information


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    sources = graph.edge_sources()
    g.add_edges_from(zip(sources.tolist(), graph.indices.tolist()))
    return g


@pytest.fixture(scope="module")
def strong_communities():
    return planted_partition_graph(600, 6, 14.0, 0.95, seed=31)


class TestNetworkxCrossValidation:
    def test_both_recover_planted_truth(self, strong_communities):
        graph, truth = strong_communities

        ours = GLPEngine().run(graph, ClassicLP(), max_iterations=25)
        ours_nmi = normalized_mutual_information(ours.labels, truth)

        nxg = to_networkx(graph)
        communities = nx.community.asyn_lpa_communities(nxg, seed=7)
        nx_labels = np.zeros(graph.num_vertices, dtype=np.int64)
        for i, community in enumerate(communities):
            for v in community:
                nx_labels[v] = i
        nx_nmi = normalized_mutual_information(nx_labels, truth)

        assert ours_nmi > 0.9
        assert nx_nmi > 0.9
        # And the two implementations agree with each other.
        assert normalized_mutual_information(ours.labels, nx_labels) > 0.85

    def test_community_counts_same_order(self, strong_communities):
        graph, _ = strong_communities
        ours = GLPEngine().run(graph, ClassicLP(), max_iterations=25)
        nxg = to_networkx(graph)
        nx_count = sum(
            1 for _ in nx.community.asyn_lpa_communities(nxg, seed=3)
        )
        our_count = np.unique(ours.labels).size
        # Same order of magnitude around the planted 6.
        assert 0.3 * nx_count <= our_count <= 3 * max(nx_count, 6) + 6

    def test_modularity_comparable(self, strong_communities):
        graph, _ = strong_communities
        from repro.graph.quality import modularity

        ours = GLPEngine().run(graph, ClassicLP(), max_iterations=25)
        our_q = modularity(graph, ours.labels)

        nxg = to_networkx(graph)
        communities = list(nx.community.asyn_lpa_communities(nxg, seed=11))
        nx_q = nx.community.modularity(nxg, communities)
        assert our_q > nx_q - 0.1
