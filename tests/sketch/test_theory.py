"""Tests for the Section 4.1 analytical bounds."""

import numpy as np
import pytest

from repro.errors import GLPError
from repro.sketch import theory


class TestLemma1:
    def test_zero_when_ht_fits_everything(self):
        assert theory.lemma1_bound(10, 16, 5) == 0.0
        assert theory.lemma1_exact(10, 16, 5) == 0.0

    def test_exact_below_bound(self):
        for m, h, f_max in [(64, 16, 9), (256, 32, 33), (100, 8, 5)]:
            assert (
                theory.lemma1_exact(m, h, f_max)
                <= theory.lemma1_bound(m, h, f_max) + 1e-12
            )

    def test_bound_decreases_with_capacity(self):
        bounds = [theory.lemma1_bound(256, h, 17) for h in (8, 16, 32, 64)]
        assert bounds == sorted(bounds, reverse=True)

    def test_bound_decreases_with_fmax(self):
        """More MFL copies -> more chances to land in the HT early."""
        bounds = [theory.lemma1_bound(256, 16, f) for f in (3, 9, 33, 129)]
        assert bounds == sorted(bounds, reverse=True)

    def test_monte_carlo_within_bound(self):
        m, h, f_max = 128, 16, 17
        measured = theory.simulate_mfl_misses_ht(
            m, h, f_max, trials=400, rng=np.random.default_rng(0)
        )
        assert measured <= theory.lemma1_bound(m, h, f_max) + 0.05

    def test_monte_carlo_tracks_exact(self):
        m, h, f_max = 64, 8, 9
        exact = theory.lemma1_exact(m, h, f_max)
        measured = theory.simulate_mfl_misses_ht(
            m, h, f_max, trials=800, rng=np.random.default_rng(1)
        )
        assert measured == pytest.approx(exact, abs=0.06)

    def test_invalid_parameters(self):
        with pytest.raises(GLPError):
            theory.lemma1_bound(0, 4, 4)
        with pytest.raises(GLPError):
            theory.simulate_mfl_misses_ht(4, 4, 4, trials=0)


class TestLemma2:
    def test_bound_formula(self):
        assert theory.lemma2_bound(8, 3) == pytest.approx(1.0)
        assert theory.lemma2_bound(8, 10) == pytest.approx(8 / 1024)

    def test_bound_capped_at_one(self):
        assert theory.lemma2_bound(10_000, 1) == 1.0

    def test_monte_carlo_within_bound(self):
        for m, d in [(64, 4), (128, 5)]:
            measured = theory.simulate_cms_overestimates(
                m, d, f_max=1, trials=200, rng=np.random.default_rng(2)
            )
            assert measured <= theory.lemma2_bound(m, d) + 0.05

    def test_deeper_cms_overestimates_less(self):
        shallow = theory.simulate_cms_overestimates(
            256, 1, f_max=1, trials=200, rng=np.random.default_rng(3)
        )
        deep = theory.simulate_cms_overestimates(
            256, 6, f_max=1, trials=200, rng=np.random.default_rng(3)
        )
        assert deep <= shallow


class TestTheorem1:
    def test_combines_both_lemmas(self):
        bound = theory.theorem1_bound(64, 16, 4)
        assert bound == pytest.approx(
            min(1.0, 64 * 2.0**-4 + np.exp(-16))
        )

    def test_small_in_practical_regime(self):
        # Converged high-degree vertex: few labels, deep CMS, big HT.
        assert theory.theorem1_bound(m=16, h=512, d=12) < 0.01

    def test_invalid(self):
        with pytest.raises(GLPError):
            theory.theorem1_bound(1, 1, 0)
