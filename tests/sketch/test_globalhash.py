"""Tests for the global-memory hash table."""

import numpy as np
import pytest

from repro.errors import GLPError
from repro.sketch.globalhash import GlobalHashTable, combine_keys


class TestCombineKeys:
    def test_unique_packing(self):
        vertices = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 0, 1])
        keys = combine_keys(vertices, labels)
        assert np.unique(keys).size == 4

    def test_range_check(self):
        with pytest.raises(GLPError):
            combine_keys(np.array([1 << 32]), np.array([0]))


class TestAddBatch:
    def test_counts_are_exact(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 100, size=2000)
        table = GlobalHashTable.for_expected_keys(100)
        slots, probes = table.add_batch(keys)
        true_counts = np.bincount(keys, minlength=100)
        stored_keys, stored_counts = table.items()
        assert stored_keys.size == np.unique(keys).size
        for key, count in zip(stored_keys, stored_counts):
            assert count == true_counts[key]

    def test_probes_at_least_one_per_insert(self):
        table = GlobalHashTable.for_expected_keys(10)
        _, probes = table.add_batch(np.arange(10))
        assert probes >= 10

    def test_probes_grow_with_load_factor(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 500, size=500)
        loose = GlobalHashTable(4096)
        tight = GlobalHashTable(512)
        _, probes_loose = loose.add_batch(keys)
        _, probes_tight = tight.add_batch(keys)
        assert probes_tight > probes_loose

    def test_weighted(self):
        table = GlobalHashTable(64)
        table.add_batch(np.array([5, 5]), np.array([1.5, 2.5]))
        assert table.estimate(np.array([5]))[0] == 4.0

    def test_estimate_absent_key(self):
        table = GlobalHashTable(64)
        table.add_batch(np.array([1]))
        assert table.estimate(np.array([999]))[0] == 0.0

    def test_full_table_raises(self):
        table = GlobalHashTable(4)
        with pytest.raises(GLPError, match="full"):
            table.add_batch(np.arange(10))

    def test_incremental_batches_accumulate(self):
        table = GlobalHashTable(128)
        table.add_batch(np.array([1, 2, 3]))
        table.add_batch(np.array([1, 1]))
        assert table.estimate(np.array([1]))[0] == 3.0
        assert table.size == 3

    def test_slots_are_stable(self):
        table = GlobalHashTable(128)
        slots1, _ = table.add_batch(np.array([9, 9, 42]))
        slots2, _ = table.add_batch(np.array([9, 42]))
        assert slots1[0] == slots1[1] == slots2[0]
        assert slots1[2] == slots2[1]

    def test_weights_length_mismatch(self):
        table = GlobalHashTable(16)
        with pytest.raises(GLPError):
            table.add_batch(np.array([1, 2]), np.array([1.0]))

    def test_sizing_helper(self):
        table = GlobalHashTable.for_expected_keys(100, load_factor=0.5)
        assert table.capacity >= 200
        with pytest.raises(GLPError):
            GlobalHashTable.for_expected_keys(10, load_factor=1.5)
