"""Tests for the fixed-capacity shared-memory hash table."""

import numpy as np
import pytest

from repro.errors import GLPError
from repro.sketch.hashtable import FixedCapacityHashTable, resident_prefix


class TestInsertion:
    def test_insert_and_count(self):
        table = FixedCapacityHashTable(8)
        ok, count, _ = table.insert(5, 1.0)
        assert ok and count == 1.0
        ok, count, _ = table.insert(5, 2.0)
        assert ok and count == 3.0
        assert table.get(5) == 3.0
        assert table.size == 1

    def test_fills_to_capacity(self):
        table = FixedCapacityHashTable(4)
        for label in range(4):
            ok, _, _ = table.insert(label)
            assert ok
        assert table.full

    def test_insert_into_full_table_fails(self):
        table = FixedCapacityHashTable(4)
        for label in range(4):
            table.insert(label)
        ok, count, probes = table.insert(99)
        assert not ok
        assert count == 0.0
        assert probes == 4  # scanned the whole table

    def test_resident_labels_still_increment_when_full(self):
        table = FixedCapacityHashTable(2)
        table.insert(1)
        table.insert(2)
        ok, count, _ = table.insert(1)
        assert ok and count == 2.0

    def test_negative_label_rejected(self):
        table = FixedCapacityHashTable(4)
        with pytest.raises(GLPError):
            table.insert(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(GLPError):
            FixedCapacityHashTable(0)

    def test_contains(self):
        table = FixedCapacityHashTable(4)
        table.insert(7)
        assert 7 in table
        assert 8 not in table

    def test_get_absent(self):
        table = FixedCapacityHashTable(4)
        assert table.get(3) == 0.0

    def test_items_and_max_count(self):
        table = FixedCapacityHashTable(8)
        table.insert(1, 2.0)
        table.insert(2, 5.0)
        table.insert(1, 1.0)
        labels, counts = table.items()
        assert sorted(labels.tolist()) == [1, 2]
        assert table.max_count() == 5.0

    def test_max_count_empty(self):
        assert FixedCapacityHashTable(4).max_count() == 0.0

    def test_clear(self):
        table = FixedCapacityHashTable(4)
        table.insert(1)
        table.clear()
        assert table.size == 0
        assert 1 not in table

    def test_nbytes(self):
        assert FixedCapacityHashTable(512).nbytes == 4096


class TestResidentPrefixEquivalence:
    """The vectorized kernel uses the first-h-distinct closed form; it must
    match the real table's behaviour for any arrival sequence."""

    @pytest.mark.parametrize("capacity", [1, 3, 8, 32])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_real_table(self, capacity, seed):
        rng = np.random.default_rng(seed)
        sequence = rng.integers(0, 40, size=200)

        table = FixedCapacityHashTable(capacity)
        for label in sequence:
            table.insert(int(label))
        real_resident = set(table.items()[0].tolist())

        _, first_positions = np.unique(sequence, return_index=True)
        distinct_in_arrival = sequence[np.sort(first_positions)]
        predicted, overflow = resident_prefix(distinct_in_arrival, capacity)
        assert set(predicted.tolist()) == real_resident
        assert set(overflow.tolist()) == (
            set(distinct_in_arrival.tolist()) - real_resident
        )

    def test_counts_match_real_table(self):
        rng = np.random.default_rng(5)
        sequence = rng.integers(0, 20, size=300)
        capacity = 8
        table = FixedCapacityHashTable(capacity)
        for label in sequence:
            table.insert(int(label))
        _, first_positions = np.unique(sequence, return_index=True)
        arrival = sequence[np.sort(first_positions)]
        resident, _ = resident_prefix(arrival, capacity)
        true_counts = np.bincount(sequence)
        for label in resident:
            assert table.get(int(label)) == true_counts[label]
