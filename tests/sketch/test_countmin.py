"""Tests for the Count-Min Sketch."""

import numpy as np
import pytest

from repro.errors import GLPError
from repro.sketch.countmin import CountMinSketch


class TestConstruction:
    def test_dimensions(self):
        sketch = CountMinSketch(4, 64)
        assert sketch.depth == 4
        assert sketch.width == 64
        assert sketch.nbytes == 4 * 64 * 4

    def test_invalid_dimensions(self):
        with pytest.raises(GLPError):
            CountMinSketch(0, 10)
        with pytest.raises(GLPError):
            CountMinSketch(2, 0)
        with pytest.raises(GLPError):
            CountMinSketch(99, 10)  # more rows than hash constants


class TestEstimates:
    def test_never_underestimates(self):
        """The core CMS property the pruning proof relies on."""
        rng = np.random.default_rng(1)
        sketch = CountMinSketch(4, 32)
        labels = rng.integers(0, 50, size=500)
        sketch.add(labels)
        true_counts = np.bincount(labels, minlength=50)
        for label in range(50):
            estimate = sketch.estimate(np.array([label]))[0]
            assert estimate >= true_counts[label]

    def test_exact_without_collisions(self):
        sketch = CountMinSketch(4, 4096)
        sketch.add(np.array([7, 7, 7, 9]))
        assert sketch.estimate(np.array([7]))[0] == 3
        assert sketch.estimate(np.array([9]))[0] == 1

    def test_weighted_adds(self):
        sketch = CountMinSketch(4, 4096)
        sketch.add(np.array([5, 5]), np.array([2.5, 0.5]))
        assert sketch.estimate(np.array([5]))[0] == pytest.approx(3.0)

    def test_add_returns_post_insert_estimates(self):
        sketch = CountMinSketch(4, 4096)
        estimates = sketch.add(np.array([3, 3, 3]))
        # Linear structure: after the batch, all occurrences see >= total.
        assert estimates.max() >= 3

    def test_weights_length_mismatch(self):
        sketch = CountMinSketch(2, 16)
        with pytest.raises(GLPError):
            sketch.add(np.array([1, 2]), np.array([1.0]))

    def test_clear(self):
        sketch = CountMinSketch(2, 16)
        sketch.add(np.array([1, 2, 3]))
        sketch.clear()
        assert sketch.total_insertions == 0
        assert sketch.estimate(np.array([1]))[0] == 0.0

    def test_empty_queries(self):
        sketch = CountMinSketch(2, 16)
        assert sketch.estimate(np.empty(0, dtype=np.int64)).size == 0

    def test_deeper_sketch_tightens_estimates(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 3000, size=3000)
        shallow = CountMinSketch(1, 64)
        deep = CountMinSketch(8, 64)
        shallow.add(labels)
        deep.add(labels)
        probe = np.unique(labels)[:200]
        assert deep.estimate(probe).sum() <= shallow.estimate(probe).sum()

    def test_bucket_addresses_shape_and_range(self):
        sketch = CountMinSketch(3, 32)
        addresses = sketch.bucket_addresses(np.array([1, 2, 3, 4]))
        assert addresses.shape == (3, 4)
        for row in range(3):
            assert np.all(addresses[row] >= row * 32)
            assert np.all(addresses[row] < (row + 1) * 32)

    def test_total_insertions(self):
        sketch = CountMinSketch(2, 16)
        sketch.add(np.array([1, 2]))
        sketch.add(np.array([3]))
        assert sketch.total_insertions == 3
