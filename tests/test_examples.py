"""Smoke tests: every example script runs end to end.

The heavier examples are parameter-shrunk via monkeypatching where needed;
the goal is exercising the exact code paths users copy from, not their
full-scale output.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str):
    return runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "purity" in out
        assert "per-kernel time breakdown" in out

    def test_custom_lp_variant(self, capsys):
        run_example("custom_lp_variant.py")
        out = capsys.readouterr().out
        assert "identical labels" in out

    def test_overlapping_communities(self, capsys):
        run_example("overlapping_communities.py")
        out = capsys.readouterr().out
        assert "bridge vertices" in out

    @pytest.mark.slow
    def test_fraud_detection_pipeline(self, capsys):
        run_example("fraud_detection_pipeline.py")
        out = capsys.readouterr().out
        assert "LP share of pipeline" in out
        assert "GLP (one simulated Titan V)" in out

    @pytest.mark.slow
    def test_billion_scale_hybrid(self, capsys):
        run_example("billion_scale_hybrid.py")
        out = capsys.readouterr().out
        assert "GLP-Hybrid" in out
        assert "visible transfer share" in out


class TestPartitioningExample:
    def test_graph_partitioning(self, capsys):
        run_example("graph_partitioning.py")
        out = capsys.readouterr().out
        assert "balanced LP:" in out
        assert "imbalance" in out
