"""Tests for the GLP engine."""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine
from repro.baselines import SerialEngine
from repro.errors import ConvergenceError, OutOfDeviceMemoryError
from repro.gpusim.config import TITAN_V
from repro.gpusim.device import Device


class TestRunBasics:
    def test_two_cliques_two_communities(self, two_cliques_graph):
        result = GLPEngine().run(
            two_cliques_graph, ClassicLP(), max_iterations=20
        )
        labels = result.labels
        # Each clique collapses to one label.
        assert np.unique(labels[:5]).size == 1
        assert np.unique(labels[5:]).size == 1

    def test_convergence_detection(self, two_cliques_graph):
        result = GLPEngine().run(
            two_cliques_graph, ClassicLP(), max_iterations=50
        )
        assert result.converged
        assert result.num_iterations < 50
        # The final iteration changed nothing.
        assert result.iterations[-1].changed_vertices == 0

    def test_stop_on_convergence_false_runs_budget(self, two_cliques_graph):
        result = GLPEngine().run(
            two_cliques_graph,
            ClassicLP(),
            max_iterations=12,
            stop_on_convergence=False,
        )
        assert result.num_iterations == 12
        assert not result.converged

    def test_invalid_iteration_budget(self, triangle_graph):
        with pytest.raises(ConvergenceError):
            GLPEngine().run(triangle_graph, ClassicLP(), max_iterations=0)

    def test_record_history(self, two_cliques_graph):
        result = GLPEngine().run(
            two_cliques_graph,
            ClassicLP(),
            max_iterations=5,
            record_history=True,
            stop_on_convergence=False,
        )
        assert len(result.history) == 5
        assert np.array_equal(result.history[-1], result.labels)

    def test_empty_edge_graph_is_fixpoint(self, empty_graph):
        result = GLPEngine().run(empty_graph, ClassicLP(), max_iterations=5)
        assert result.converged
        assert result.num_iterations == 1
        assert np.array_equal(
            result.labels, np.arange(empty_graph.num_vertices)
        )

    def test_matches_serial_reference(self, powerlaw_graph):
        gpu = GLPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=10,
            stop_on_convergence=False,
        )
        cpu = SerialEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=10,
            stop_on_convergence=False,
        )
        assert np.array_equal(gpu.labels, cpu.labels)


class TestDeviceInteraction:
    def test_timing_recorded_per_iteration(self, powerlaw_graph):
        result = GLPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=3,
            stop_on_convergence=False,
        )
        assert len(result.iterations) == 3
        for stats in result.iterations:
            assert stats.seconds > 0
            assert stats.kernel_seconds > 0
            assert stats.counters.global_transactions > 0

    def test_device_memory_released_after_run(self, powerlaw_graph):
        engine = GLPEngine()
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=2)
        assert engine.device.allocated_bytes == 0

    def test_oversized_graph_raises(self, powerlaw_graph):
        tiny = Device(TITAN_V.with_memory(1024))
        with pytest.raises(OutOfDeviceMemoryError):
            GLPEngine(device=tiny).run(
                powerlaw_graph, ClassicLP(), max_iterations=2
            )

    def test_reuse_engine_resets_timing(self, two_cliques_graph):
        engine = GLPEngine()
        first = engine.run(two_cliques_graph, ClassicLP(), max_iterations=3)
        second = engine.run(two_cliques_graph, ClassicLP(), max_iterations=3)
        assert second.total_seconds == pytest.approx(
            first.total_seconds, rel=1e-9
        )

    def test_weighted_graph_on_device(self):
        from repro.graph.builder import from_edge_arrays

        # v0 hears label of v2 with weight 5 vs two weight-1 votes for v1's.
        src = np.array([1, 1, 2])
        dst = np.array([0, 0, 0])
        graph = from_edge_arrays(
            src, dst, 3, weights=np.array([1.0, 1.0, 5.0]), symmetrize=False
        )
        result = GLPEngine().run(graph, ClassicLP(), max_iterations=1,
                                 stop_on_convergence=False)
        assert result.labels[0] == 2


class TestDeterminism:
    def test_repeated_runs_identical(self, powerlaw_graph):
        runs = [
            GLPEngine().run(
                powerlaw_graph, ClassicLP(), max_iterations=8,
                stop_on_convergence=False,
            ).labels
            for _ in range(2)
        ]
        assert np.array_equal(runs[0], runs[1])

    def test_counters_deterministic(self, powerlaw_graph):
        results = [
            GLPEngine().run(
                powerlaw_graph, ClassicLP(), max_iterations=4,
                stop_on_convergence=False,
            )
            for _ in range(2)
        ]
        a = results[0].total_counters.as_dict()
        b = results[1].total_counters.as_dict()
        assert a == b
