"""Tests for the CPU-GPU hybrid engine."""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine, SeededFraudLP
from repro.core.hybrid import HybridEngine, run_auto
from repro.errors import ConvergenceError, OutOfDeviceMemoryError
from repro.gpusim.config import TITAN_V


def small_spec_for(graph, fraction):
    """A device sized so only ``fraction`` of the edges can stay resident.

    Accounts for the engine's label-array overhead and safety margin so the
    residency split lands near ``fraction`` even for tiny test graphs.
    """
    label_bytes = (graph.num_vertices + 1) * 8
    budget = 4 * label_bytes + int(graph.indices.nbytes * fraction)
    return TITAN_V.with_memory(int(budget / 0.9) + 1024)


class TestHybridCorrectness:
    def test_matches_pure_gpu_engine(self, powerlaw_graph):
        pure = GLPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=8,
            stop_on_convergence=False,
        )
        hybrid = HybridEngine(
            spec=small_spec_for(powerlaw_graph, 0.5)
        ).run(
            powerlaw_graph, ClassicLP(), max_iterations=8,
            stop_on_convergence=False,
        )
        assert np.array_equal(pure.labels, hybrid.labels)

    def test_matches_with_seeded_program(self, community_graph):
        graph, truth = community_graph
        seeds = {0: 100, 50: 200, 99: 300}
        pure = GLPEngine().run(
            graph, SeededFraudLP(seeds), max_iterations=10,
            stop_on_convergence=False,
        )
        hybrid = HybridEngine(spec=small_spec_for(graph, 0.4)).run(
            graph, SeededFraudLP(seeds), max_iterations=10,
            stop_on_convergence=False,
        )
        assert np.array_equal(pure.labels, hybrid.labels)

    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
    def test_any_residency_split_is_exact(self, powerlaw_graph, fraction):
        reference = GLPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=6,
            stop_on_convergence=False,
        )
        hybrid = HybridEngine(
            spec=small_spec_for(powerlaw_graph, fraction)
        ).run(
            powerlaw_graph, ClassicLP(), max_iterations=6,
            stop_on_convergence=False,
        )
        assert np.array_equal(reference.labels, hybrid.labels)

    def test_too_small_device_raises(self, powerlaw_graph):
        engine = HybridEngine(spec=TITAN_V.with_memory(1024))
        with pytest.raises(OutOfDeviceMemoryError):
            engine.run(powerlaw_graph, ClassicLP(), max_iterations=2)

    def test_invalid_memory_safety(self):
        with pytest.raises(ConvergenceError):
            HybridEngine(memory_safety=0.0)


class TestHybridStats:
    def test_stats_populated(self, powerlaw_graph):
        engine = HybridEngine(spec=small_spec_for(powerlaw_graph, 0.5))
        engine.run(
            powerlaw_graph, ClassicLP(), max_iterations=5,
            stop_on_convergence=False,
        )
        stats = engine.last_stats
        assert stats is not None
        assert 0 < stats.num_resident_chunks <= stats.num_chunks
        assert 0.0 < stats.resident_edge_fraction < 1.0
        assert stats.kernel_seconds > 0
        assert 0.0 <= stats.transfer_fraction < 1.0

    def test_full_residency_when_graph_fits(self, two_cliques_graph):
        engine = HybridEngine(spec=TITAN_V)
        engine.run(two_cliques_graph, ClassicLP(), max_iterations=3)
        assert engine.last_stats.resident_edge_fraction == 1.0
        assert engine.last_stats.cpu_seconds == 0.0

    def test_frontier_shrinks_cpu_share(self, community_graph):
        """After convergence sets in, the CPU's overflow share collapses
        for frontier-safe programs."""
        graph, _ = community_graph
        engine = HybridEngine(spec=small_spec_for(graph, 0.4))
        result = engine.run(
            graph, ClassicLP(), max_iterations=15,
            stop_on_convergence=False,
        )
        # Changed-vertex counts decay; late iterations are cheap.
        changes = [s.changed_vertices for s in result.iterations]
        assert changes[-1] < changes[0]

    def test_device_memory_released(self, powerlaw_graph):
        engine = HybridEngine(spec=small_spec_for(powerlaw_graph, 0.5))
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=3)
        assert engine.device.allocated_bytes == 0


class TestRunAuto:
    def test_small_graph_uses_pure_engine(self, two_cliques_graph):
        result, engine = run_auto(
            two_cliques_graph, ClassicLP(), max_iterations=5
        )
        assert isinstance(engine, GLPEngine)
        assert result.num_iterations >= 1

    def test_oversized_graph_uses_hybrid(self, powerlaw_graph):
        result, engine = run_auto(
            powerlaw_graph,
            ClassicLP(),
            spec=small_spec_for(powerlaw_graph, 0.5),
            max_iterations=5,
            stop_on_convergence=False,
        )
        assert isinstance(engine, HybridEngine)
        reference = GLPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=5,
            stop_on_convergence=False,
        )
        assert np.array_equal(result.labels, reference.labels)


class TestTransferFractionDenominator:
    """Regression: the fraction's denominator is the modeled *elapsed*
    time (``max(kernel, cpu) + transfer`` per iteration), not the serial
    sum ``kernel + cpu + transfer`` — GPU and CPU shares overlap, so the
    old sum overstated the run time and understated the fraction."""

    def test_constructed_stats_use_elapsed(self):
        from repro.core.hybrid import HybridStats

        stats = HybridStats(
            num_chunks=2,
            num_resident_chunks=1,
            resident_edge_fraction=0.5,
            h2d_bytes=0,
            visible_transfer_seconds=1.0,
            kernel_seconds=4.0,
            cpu_seconds=3.0,
            elapsed_seconds=5.0,  # max(4, 3) + 1 per the overlap model
        )
        assert stats.transfer_fraction == pytest.approx(1.0 / 5.0)
        # The pre-fix value, for the record: 1 / (4 + 3 + 1) = 0.125.
        assert stats.transfer_fraction > 1.0 / 8.0
        zero = HybridStats(
            num_chunks=1, num_resident_chunks=1,
            resident_edge_fraction=1.0, h2d_bytes=0,
            visible_transfer_seconds=0.0, kernel_seconds=0.0,
            cpu_seconds=0.0, elapsed_seconds=0.0,
        )
        assert zero.transfer_fraction == 0.0

    def test_engine_stats_tie_out_to_iterations(self, powerlaw_graph):
        engine = HybridEngine(spec=small_spec_for(powerlaw_graph, 0.5))
        result = engine.run(
            powerlaw_graph, ClassicLP(), max_iterations=5,
            stop_on_convergence=False,
        )
        stats = engine.last_stats
        assert stats.cpu_seconds > 0  # the split really overflowed
        assert stats.elapsed_seconds == pytest.approx(result.total_seconds)
        assert stats.transfer_fraction == pytest.approx(
            stats.visible_transfer_seconds / stats.elapsed_seconds
        )
        # Overlap: elapsed is strictly less than the serial sum the old
        # denominator used.
        serial_sum = (
            stats.kernel_seconds
            + stats.cpu_seconds
            + stats.visible_transfer_seconds
        )
        assert stats.elapsed_seconds < serial_sum
