"""Incremental re-convergence across the three device engines.

The contract under test (see ``docs/incremental_lp.md``): every engine
that advertises ``supports_incremental`` accepts an
``initial_frontier`` — the affected vertex set of a window slide — and
re-converges to the *bitwise identical* labeling of the dense warm
recompute while charging only the frontier's edges.  Pinned seed
vertices are pruned from every sparse worklist.
"""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine, LayeredLP, SeededFraudLP
from repro.core.hybrid import HybridEngine
from repro.core.multigpu import MultiGPUEngine
from repro.errors import ConvergenceError, KernelError
from repro.kernels.frontier import prune_pinned
from repro.pipeline.dynlp import plan_slide
from repro.pipeline.incremental import (
    IncrementalWindowBuilder,
    warm_start_seeds,
)
from repro.pipeline.seeds import SeedStore
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)

ENGINE_FACTORIES = {
    "glp": lambda: GLPEngine(frontier="auto"),
    "hybrid": lambda: HybridEngine(frontier="auto"),
    "multigpu": lambda: MultiGPUEngine(2, frontier="auto"),
}


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=800,
            num_products=400,
            num_days=12,
            transactions_per_day=400,
            num_rings=3,
            ring_size=6,
            seed=33,
        )
    )


@pytest.fixture(scope="module")
def slide(stream):
    """One warm slide: previous/current windows, diff, and seed sets."""
    builder = IncrementalWindowBuilder(stream)
    for day in range(8):
        builder.add_day(day)
    previous = builder.build()
    diff = builder.slide()
    current = builder.build()
    store = SeedStore(stream.blacklist())
    return {
        "previous": previous,
        "diff": diff,
        "current": current,
        "prev_seeds": store.window_seeds(previous),
        "base_seeds": store.window_seeds(current),
    }


def total_processed_edges(result):
    return sum(s.processed_edges for s in result.iterations)


def warm_seeds_for(slide, prev_labels):
    return warm_start_seeds(
        slide["previous"],
        prev_labels,
        slide["current"],
        slide["base_seeds"],
        carry_products=True,
    )


class TestIncrementalVsFull:
    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_bitwise_identity_with_fewer_edges(self, name, slide):
        factory = ENGINE_FACTORIES[name]
        assert factory().supports_incremental

        prev = factory().run(
            slide["previous"].graph,
            SeededFraudLP(slide["prev_seeds"]),
            max_iterations=20,
        )
        assert prev.final_frontier is not None
        seeds = warm_seeds_for(slide, prev.labels)
        plan = plan_slide(
            slide["diff"],
            slide["previous"],
            slide["current"],
            residual_frontier=prev.final_frontier,
            seeds=seeds,
            cutover_ratio=1.0,
        )
        assert plan.incremental

        full = factory().run(
            slide["current"].graph,
            SeededFraudLP(seeds),
            max_iterations=20,
        )
        inc = factory().run(
            slide["current"].graph,
            SeededFraudLP(seeds),
            max_iterations=20,
            initial_frontier=plan.frontier,
        )
        assert inc.labels_hash() == full.labels_hash()
        assert inc.converged == full.converged
        assert total_processed_edges(inc) < total_processed_edges(full)

    def test_full_vertex_superset_is_identical(self, slide):
        # Any superset of the iteration-1 changers preserves identity;
        # the whole vertex set is the extreme case.
        graph = slide["current"].graph
        seeds = slide["base_seeds"]
        full = GLPEngine(frontier="auto").run(
            graph, SeededFraudLP(seeds), max_iterations=20
        )
        superset = GLPEngine(frontier="auto").run(
            graph,
            SeededFraudLP(seeds),
            max_iterations=20,
            initial_frontier=np.arange(graph.num_vertices, dtype=np.int64),
        )
        assert superset.labels_hash() == full.labels_hash()
        assert superset.num_iterations == full.num_iterations


class TestRunArguments:
    def test_empty_initial_frontier_converges_immediately(self, slide):
        result = GLPEngine(frontier="auto").run(
            slide["current"].graph,
            SeededFraudLP(slide["base_seeds"]),
            max_iterations=20,
            initial_frontier=np.empty(0, dtype=np.int64),
        )
        assert result.converged
        assert result.num_iterations == 1

    def test_unsafe_program_ignores_initial_frontier(self, slide):
        # LayeredLP is not frontier_safe: the engine must run it dense
        # (the correct superset), not crash or mislabel.
        graph = slide["current"].graph
        reference = GLPEngine(frontier="auto").run(
            graph, LayeredLP(), max_iterations=8
        )
        seeded = GLPEngine(frontier="auto").run(
            graph,
            LayeredLP(),
            max_iterations=8,
            initial_frontier=np.array([0, 1], dtype=np.int64),
        )
        assert seeded.labels_hash() == reference.labels_hash()

    def test_out_of_range_initial_frontier_rejected(self, slide):
        graph = slide["current"].graph
        with pytest.raises(KernelError):
            GLPEngine(frontier="auto").run(
                graph,
                SeededFraudLP(slide["base_seeds"]),
                initial_frontier=np.array(
                    [graph.num_vertices + 5], dtype=np.int64
                ),
            )

    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_warm_labels_shape_rejected(self, name, slide):
        graph = slide["current"].graph
        with pytest.raises(ConvergenceError):
            ENGINE_FACTORIES[name]().run(
                graph,
                SeededFraudLP(slide["base_seeds"]),
                warm_labels=np.zeros(graph.num_vertices - 1, dtype=np.int64),
            )

    def test_warm_labels_resume_from_fixpoint(self, slide):
        graph = slide["current"].graph
        seeds = slide["base_seeds"]
        reference = GLPEngine(frontier="auto").run(
            graph, SeededFraudLP(seeds), max_iterations=20
        )
        assert reference.converged
        resumed = GLPEngine(frontier="auto").run(
            graph,
            SeededFraudLP(seeds),
            max_iterations=20,
            warm_labels=reference.labels,
            initial_frontier=np.empty(0, dtype=np.int64),
        )
        assert resumed.converged
        assert np.array_equal(resumed.labels, reference.labels)


class TestFinalFrontier:
    def test_frontier_run_exposes_residual(self, slide):
        result = GLPEngine(frontier="auto").run(
            slide["current"].graph,
            SeededFraudLP(slide["base_seeds"]),
            max_iterations=20,
        )
        assert isinstance(result.final_frontier, np.ndarray)

    def test_dense_run_has_no_residual(self, slide):
        result = GLPEngine().run(
            slide["current"].graph,
            SeededFraudLP(slide["base_seeds"]),
            max_iterations=20,
        )
        assert result.final_frontier is None


class TestPinnedVertices:
    def test_default_program_pins_nothing(self, slide):
        assert ClassicLP().pinned_vertices(slide["current"].graph) is None

    def test_seeded_program_pins_its_seeds(self, slide):
        seeds = slide["base_seeds"]
        program = SeededFraudLP(seeds)
        # Engines resolve the pinned set after ``init_labels`` (which is
        # where the program materializes its seed arrays).
        program.init_labels(slide["current"].graph)
        pinned = program.pinned_vertices(slide["current"].graph)
        assert np.array_equal(
            pinned, np.unique(np.array(sorted(seeds), dtype=np.int64))
        )

    def test_prune_pinned_drops_only_pinned(self):
        frontier = np.array([1, 3, 5, 7], dtype=np.int64)
        pinned = np.array([3, 7, 9], dtype=np.int64)
        assert np.array_equal(
            prune_pinned(frontier, pinned), np.array([1, 5])
        )
        assert prune_pinned(frontier, None) is frontier
        assert prune_pinned(frontier, np.empty(0, dtype=np.int64)) is frontier

    def test_residual_frontier_excludes_pinned(self, slide):
        seeds = slide["base_seeds"]
        program = SeededFraudLP(seeds)
        result = GLPEngine(frontier="auto").run(
            slide["current"].graph, program, max_iterations=20
        )
        pinned = program.pinned_vertices(slide["current"].graph)
        assert np.intersect1d(result.final_frontier, pinned).size == 0
