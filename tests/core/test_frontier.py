"""Differential and accounting tests for frontier-based delta propagation.

The frontier and auto engines must be *bitwise* interchangeable with the
dense engine for every LP variant — sparse execution is an optimization,
never a semantics change.
"""

import numpy as np
import pytest

from repro import (
    ClassicLP,
    GLPEngine,
    LayeredLP,
    SeededFraudLP,
    SpeakerListenerLP,
)
from repro.core.hybrid import HybridEngine
from repro.core.multigpu import MultiGPUEngine
from repro.errors import KernelError, OutOfDeviceMemoryError
from repro.graph.builder import from_edge_arrays
from repro.graph.generators.lfr import lfr_graph
from repro.graph.generators.rmat import rmat_graph
from repro.gpusim.config import TITAN_V
from repro.gpusim.device import Device
from repro.kernels.frontier import FrontierConfig, use_sparse_pass

MODES = ("frontier", "auto")


def _weighted_graph():
    rng = np.random.default_rng(11)
    src = rng.integers(0, 120, size=600)
    dst = rng.integers(0, 120, size=600)
    weights = rng.integers(1, 5, size=600).astype(float)
    return from_edge_arrays(
        src, dst, 120, weights=weights, symmetrize=True, name="weighted"
    )


def _graph_with_isolated():
    # 40 connected vertices + 10 isolated ones at the top of the id range.
    rng = np.random.default_rng(3)
    src = rng.integers(0, 40, size=200)
    dst = rng.integers(0, 40, size=200)
    return from_edge_arrays(src, dst, 50, symmetrize=True, name="isolated")


def _graphs():
    return [
        rmat_graph(8, 6.0, seed=5, name="rmat"),
        lfr_graph(300, mu=0.2, seed=9)[0],
        _weighted_graph(),
        _graph_with_isolated(),
    ]


def _programs(graph):
    seeds = {0: 100, min(3, graph.num_vertices - 1): 200}
    return [
        lambda: ClassicLP(),
        lambda: LayeredLP(gamma=0.5),
        lambda: SpeakerListenerLP(seed=17),
        lambda: SeededFraudLP(dict(seeds)),
    ]


class TestDifferentialIdentity:
    @pytest.mark.parametrize("mode", MODES)
    def test_all_programs_all_graphs(self, mode):
        for graph in _graphs():
            for make_program in _programs(graph):
                dense = GLPEngine().run(
                    graph, make_program(), max_iterations=12
                )
                other = GLPEngine(frontier=mode).run(
                    graph, make_program(), max_iterations=12
                )
                assert np.array_equal(dense.labels, other.labels), (
                    f"{mode} diverged on {graph.name} / "
                    f"{make_program().name}"
                )
                assert dense.num_iterations == other.num_iterations

    @pytest.mark.parametrize("mode", MODES)
    def test_no_convergence_stop(self, mode):
        graph = rmat_graph(8, 6.0, seed=5)
        dense = GLPEngine().run(
            graph, ClassicLP(), max_iterations=10, stop_on_convergence=False
        )
        other = GLPEngine(frontier=mode).run(
            graph, ClassicLP(), max_iterations=10, stop_on_convergence=False
        )
        assert np.array_equal(dense.labels, other.labels)

    def test_gsort_pass_kind(self):
        graph = rmat_graph(8, 6.0, seed=5)
        dense = GLPEngine(pass_kind="gsort").run(
            graph, ClassicLP(), max_iterations=10
        )
        sparse = GLPEngine(pass_kind="gsort", frontier="frontier").run(
            graph, ClassicLP(), max_iterations=10
        )
        assert np.array_equal(dense.labels, sparse.labels)

    def test_multigpu_identity(self):
        graph = rmat_graph(8, 6.0, seed=5)
        dense = MultiGPUEngine(2).run(graph, ClassicLP(), max_iterations=12)
        sparse = MultiGPUEngine(2, frontier="auto").run(
            graph, ClassicLP(), max_iterations=12
        )
        assert np.array_equal(dense.labels, sparse.labels)

    def test_hybrid_identity(self):
        graph = rmat_graph(8, 6.0, seed=5)
        spec = TITAN_V.with_memory(
            graph.nbytes // 2 + 80 * (graph.num_vertices + 1) * 8
        )
        dense = HybridEngine(spec=spec).run(
            graph, ClassicLP(), max_iterations=12
        )
        sparse = HybridEngine(spec=spec, frontier="auto").run(
            graph, ClassicLP(), max_iterations=12
        )
        assert np.array_equal(dense.labels, sparse.labels)


class TestFrontierStats:
    def test_frontier_shrinks_and_edges_drop(self):
        graph = rmat_graph(8, 6.0, seed=5)
        result = GLPEngine(frontier="frontier").run(
            graph, ClassicLP(), max_iterations=12
        )
        stats = result.iterations
        assert stats[0].kernel_stats["pass_mode"] == "dense"
        assert stats[0].frontier_size == graph.num_vertices
        assert stats[0].processed_edges == graph.num_edges
        for later in stats[1:]:
            assert later.kernel_stats["pass_mode"] == "sparse"
            assert later.frontier_size <= graph.num_vertices
            assert later.processed_edges <= graph.num_edges
        # The last iterations converge: tiny frontier, tiny edge counts.
        assert stats[-1].frontier_size < graph.num_vertices

    def test_auto_mode_switch_visible(self):
        graph = rmat_graph(8, 6.0, seed=5)
        result = GLPEngine(frontier="auto").run(
            graph, ClassicLP(), max_iterations=12
        )
        modes = [s.kernel_stats["pass_mode"] for s in result.iterations]
        fractions = [
            s.kernel_stats.get("frontier_fraction") for s in result.iterations
        ]
        assert modes[0] == "dense"
        assert "sparse" in modes  # the switch actually fired
        assert all(f is not None for f in fractions)

    def test_frontier_kernels_on_timeline(self):
        graph = rmat_graph(8, 6.0, seed=5)
        engine = GLPEngine(frontier="frontier")
        engine.run(graph, ClassicLP(), max_iterations=6)
        names = {record.name for record in engine.device.timeline}
        assert "frontier-expand" in names
        assert "frontier-compact" in names

    def test_sparse_run_is_cheaper(self):
        graph = rmat_graph(9, 8.0, seed=7)
        dense = GLPEngine().run(
            graph, ClassicLP(), max_iterations=12, stop_on_convergence=False
        )
        sparse = GLPEngine(frontier="auto").run(
            graph, ClassicLP(), max_iterations=12, stop_on_convergence=False
        )
        dense_k = sum(s.kernel_seconds for s in dense.iterations)
        sparse_k = sum(s.kernel_seconds for s in sparse.iterations)
        assert sparse_k < dense_k


class TestResidencyAndConfig:
    def test_reversed_csr_counts_against_device_memory(self):
        graph = rmat_graph(8, 6.0, seed=5)
        label_bytes = graph.num_vertices * 8
        dense_need = graph.nbytes + 2 * label_bytes
        spec = TITAN_V.with_memory(dense_need + 1024)
        # Dense fits...
        GLPEngine(device=Device(spec)).run(
            graph, ClassicLP(), max_iterations=2
        )
        # ...but the reversed CSR + bitmap residency does not.
        with pytest.raises(OutOfDeviceMemoryError):
            GLPEngine(device=Device(spec), frontier="frontier").run(
                graph, ClassicLP(), max_iterations=2
            )

    def test_memory_released_after_frontier_run(self):
        graph = rmat_graph(8, 6.0, seed=5)
        engine = GLPEngine(frontier="frontier")
        engine.run(graph, ClassicLP(), max_iterations=4)
        assert engine.device.allocated_bytes == 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(KernelError):
            GLPEngine(frontier="eager")
        with pytest.raises(KernelError):
            FrontierConfig(mode="auto", dense_threshold=0.0)

    def test_direction_switch_thresholds(self):
        auto = FrontierConfig(mode="auto", dense_threshold=0.25)
        assert use_sparse_pass(auto, 10, 100)
        assert use_sparse_pass(auto, 25, 100)
        assert not use_sparse_pass(auto, 26, 100)
        always = FrontierConfig(mode="frontier")
        assert use_sparse_pass(always, 99, 100)
        dense = FrontierConfig(mode="dense")
        assert not use_sparse_pass(dense, 0, 100)

    def test_reversed_graph_memoized(self):
        graph = rmat_graph(7, 4.0, seed=2)
        assert graph.reversed() is graph.reversed()


class TestDegreeBinsCaching:
    def test_dense_run_bins_once(self, monkeypatch):
        import repro.core.framework as framework
        import repro.kernels.propagate as propagate

        calls = {"framework": 0, "propagate": 0}
        real = framework.bin_vertices_by_degree

        def counting_framework(*args, **kwargs):
            calls["framework"] += 1
            return real(*args, **kwargs)

        def counting_propagate(*args, **kwargs):
            calls["propagate"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(
            framework, "bin_vertices_by_degree", counting_framework
        )
        monkeypatch.setattr(
            propagate, "bin_vertices_by_degree", counting_propagate
        )
        graph = rmat_graph(7, 4.0, seed=2)
        GLPEngine().run(
            graph, ClassicLP(), max_iterations=6, stop_on_convergence=False
        )
        # One full-graph binning for the whole run; the per-iteration
        # passes reuse it instead of re-binning.
        assert calls["framework"] == 1
        assert calls["propagate"] == 0


class TestWarmStartSpeedup:
    def test_warm_frontier_processes_far_fewer_edges(self):
        graph = lfr_graph(400, mu=0.15, seed=4)[0]
        cold = GLPEngine().run(graph, ClassicLP(), max_iterations=20)

        # Warm start: seed every vertex with its converged label.
        class WarmLP(ClassicLP):
            def init_labels(self, g):
                return cold.labels.copy()

        dense = GLPEngine().run(
            graph, WarmLP(), max_iterations=20, stop_on_convergence=False
        )
        sparse = GLPEngine(frontier="auto").run(
            graph, WarmLP(), max_iterations=20, stop_on_convergence=False
        )
        assert np.array_equal(dense.labels, sparse.labels)
        dense_tail = sum(s.processed_edges for s in dense.iterations[1:])
        sparse_tail = sum(s.processed_edges for s in sparse.iterations[1:])
        assert sparse_tail * 5 <= dense_tail
