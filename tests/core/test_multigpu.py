"""Tests for the multi-GPU engine."""

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine
from repro.core.multigpu import MultiGPUEngine
from repro.errors import ConvergenceError


class TestMultiGPUCorrectness:
    @pytest.mark.parametrize("num_gpus", [1, 2, 3, 4])
    def test_matches_single_gpu(self, powerlaw_graph, num_gpus):
        reference = GLPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=6,
            stop_on_convergence=False,
        )
        multi = MultiGPUEngine(num_gpus).run(
            powerlaw_graph, ClassicLP(), max_iterations=6,
            stop_on_convergence=False,
        )
        assert np.array_equal(reference.labels, multi.labels)

    def test_invalid_gpu_count(self):
        with pytest.raises(ConvergenceError):
            MultiGPUEngine(0)

    def test_engine_name(self):
        assert MultiGPUEngine(2).name == "GLP-2GPU"

    def test_convergence_stops_early(self, two_cliques_graph):
        result = MultiGPUEngine(2).run(
            two_cliques_graph, ClassicLP(), max_iterations=50
        )
        assert result.converged
        assert result.num_iterations < 50


class TestMultiGPUScaling:
    def test_two_gpus_faster_on_big_graph(self, powerlaw_graph):
        single = GLPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=6,
            stop_on_convergence=False,
        )
        dual = MultiGPUEngine(2).run(
            powerlaw_graph, ClassicLP(), max_iterations=6,
            stop_on_convergence=False,
        )
        assert dual.seconds_per_iteration < single.seconds_per_iteration

    def test_speedup_below_linear(self, powerlaw_graph):
        """The label exchange bounds scaling below 2x (paper: 1.8x)."""
        single = GLPEngine().run(
            powerlaw_graph, ClassicLP(), max_iterations=6,
            stop_on_convergence=False,
        )
        dual = MultiGPUEngine(2).run(
            powerlaw_graph, ClassicLP(), max_iterations=6,
            stop_on_convergence=False,
        )
        speedup = (
            single.seconds_per_iteration / dual.seconds_per_iteration
        )
        assert speedup < 2.05

    def test_exchange_time_recorded(self, powerlaw_graph):
        result = MultiGPUEngine(2).run(
            powerlaw_graph, ClassicLP(), max_iterations=3,
            stop_on_convergence=False,
        )
        assert any(s.transfer_seconds > 0 for s in result.iterations)

    def test_single_gpu_has_no_exchange(self, powerlaw_graph):
        result = MultiGPUEngine(1).run(
            powerlaw_graph, ClassicLP(), max_iterations=3,
            stop_on_convergence=False,
        )
        assert all(s.transfer_seconds == 0 for s in result.iterations)
