"""Tests for the LPProgram hook API and its validation."""

import numpy as np
import pytest

from repro.core.api import (
    ElementwiseProgram,
    LPProgram,
    elementwise_program,
    validate_program,
)
from repro.errors import ProgramError
from repro.types import LABEL_DTYPE, WEIGHT_DTYPE


class TestDefaults:
    def test_init_labels_unique(self, triangle_graph):
        labels = LPProgram().init_labels(triangle_graph)
        assert labels.tolist() == [0, 1, 2]
        assert labels.dtype == LABEL_DTYPE

    def test_pick_labels_identity(self, triangle_graph):
        program = LPProgram()
        labels = np.array([5, 6, 7], dtype=LABEL_DTYPE)
        assert np.array_equal(
            program.pick_labels(triangle_graph, labels, 1), labels
        )

    def test_load_neighbor_passthrough(self):
        program = LPProgram()
        labels = np.array([1, 2], dtype=LABEL_DTYPE)
        weights = np.array([0.5, 2.0])
        out_labels, out_freqs = program.load_neighbor(
            np.array([0, 0]), np.array([1, 2]), labels, weights
        )
        assert np.array_equal(out_labels, labels)
        assert np.array_equal(out_freqs, weights)

    def test_score_is_frequency(self):
        program = LPProgram()
        freqs = np.array([1.0, 3.0])
        scores = program.score(np.zeros(2), np.zeros(2), freqs)
        assert np.array_equal(scores, freqs)

    def test_update_adopts_finite_scores(self):
        program = LPProgram()
        current = np.array([10, 11, 12], dtype=LABEL_DTYPE)
        new = program.update_vertices(
            np.array([0, 2]),
            np.array([77, 88], dtype=LABEL_DTYPE),
            np.array([1.0, -np.inf]),
            current,
        )
        assert new.tolist() == [77, 11, 12]  # vertex 2 kept (no evidence)

    def test_converged_on_fixpoint(self):
        program = LPProgram()
        labels = np.array([1, 2, 3], dtype=LABEL_DTYPE)
        assert program.converged(labels, labels.copy(), 3)
        assert not program.converged(labels, labels + 1, 3)


class TestValidation:
    def test_accepts_default_program(self, triangle_graph):
        validate_program(LPProgram(), triangle_graph)

    def test_rejects_bad_shape(self, triangle_graph):
        class Bad(LPProgram):
            def init_labels(self, graph):
                return np.zeros(graph.num_vertices + 1, dtype=LABEL_DTYPE)

        with pytest.raises(ProgramError, match="shape"):
            validate_program(Bad(), triangle_graph)

    def test_rejects_bad_dtype(self, triangle_graph):
        class Bad(LPProgram):
            def init_labels(self, graph):
                return np.zeros(graph.num_vertices, dtype=np.float64)

        with pytest.raises(ProgramError, match="dtype"):
            validate_program(Bad(), triangle_graph)

    def test_rejects_non_monotone_score(self, triangle_graph):
        class Bad(LPProgram):
            def score(self, vertex_ids, labels, frequencies):
                return -frequencies

        with pytest.raises(ProgramError, match="monotone"):
            validate_program(Bad(), triangle_graph)

    def test_rejects_wrong_score_arity(self, triangle_graph):
        class Bad(LPProgram):
            def score(self, vertex_ids, labels, frequencies):
                return np.array([1.0])

        with pytest.raises(ProgramError, match="one value"):
            validate_program(Bad(), triangle_graph)

    def test_empty_graph_ok(self):
        from repro.graph.csr import CSRGraph

        graph = CSRGraph(
            offsets=np.zeros(1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
        )
        validate_program(LPProgram(), graph)


class TestElementwiseAdapter:
    def test_scalar_score_hook(self, triangle_graph):
        program = elementwise_program(
            label_score=lambda vid, label, freq: freq * 2.0
        )
        scores = program.score(
            np.array([0, 1]),
            np.array([3, 4], dtype=LABEL_DTYPE),
            np.array([1.0, 2.0]),
        )
        assert scores.tolist() == [2.0, 4.0]
        assert scores.dtype == WEIGHT_DTYPE

    def test_scalar_load_neighbor_hook(self):
        program = elementwise_program(
            load_neighbor=lambda vid, nid, label, weight: (label + 1, weight)
        )
        labels, freqs = program.load_neighbor(
            np.array([0]), np.array([1]),
            np.array([5], dtype=LABEL_DTYPE), np.array([1.0]),
        )
        assert labels.tolist() == [6]

    def test_scalar_pick_label_hook(self, triangle_graph):
        program = elementwise_program(pick_label=lambda vid, label: vid * 10)
        picked = program.pick_labels(
            triangle_graph, np.zeros(3, dtype=LABEL_DTYPE), 1
        )
        assert picked.tolist() == [0, 10, 20]

    def test_scalar_update_hook(self):
        program = elementwise_program(
            update_vertex=lambda vid, label, score, current: (
                label if score > 1 else current
            )
        )
        out = program.update_vertices(
            np.array([0, 1]),
            np.array([7, 8], dtype=LABEL_DTYPE),
            np.array([2.0, 0.5]),
            np.array([0, 1], dtype=LABEL_DTYPE),
        )
        assert out.tolist() == [7, 1]

    def test_defaults_without_hooks(self, triangle_graph):
        program = ElementwiseProgram()
        labels = np.array([1, 2, 3], dtype=LABEL_DTYPE)
        assert np.array_equal(
            program.pick_labels(triangle_graph, labels, 1), labels
        )
        scores = program.score(
            np.zeros(2), np.zeros(2), np.array([1.0, 2.0])
        )
        assert scores.tolist() == [1.0, 2.0]

    def test_elementwise_matches_vectorized_in_engine(self, two_cliques_graph):
        """Differential: the scalar API and the vectorized default compute
        the same classic LP."""
        from repro import ClassicLP, GLPEngine

        vectorized = GLPEngine().run(
            two_cliques_graph, ClassicLP(), max_iterations=10
        )
        scalar = GLPEngine().run(
            two_cliques_graph,
            elementwise_program(
                label_score=lambda vid, label, freq: freq
            ),
            max_iterations=10,
        )
        assert np.array_equal(vectorized.labels, scalar.labels)
