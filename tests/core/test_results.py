"""Tests for LPResult containers."""

import json

import numpy as np
import pytest

from repro.core.results import IterationStats, LPResult
from repro.gpusim.counters import PerfCounters


def make_result(labels, seconds_list):
    iterations = [
        IterationStats(
            iteration=i + 1,
            seconds=s,
            kernel_seconds=s,
            transfer_seconds=0.0,
            changed_vertices=0,
            counters=PerfCounters(global_load_transactions=10),
        )
        for i, s in enumerate(seconds_list)
    ]
    return LPResult(
        labels=np.asarray(labels), iterations=iterations, converged=True
    )


class TestTimings:
    def test_totals(self):
        result = make_result([0, 0, 1], [0.5, 1.5])
        assert result.total_seconds == 2.0
        assert result.seconds_per_iteration == 1.0
        assert result.num_iterations == 2

    def test_empty_iterations(self):
        result = LPResult(
            labels=np.array([0]), iterations=[], converged=False
        )
        assert result.total_seconds == 0.0
        assert result.seconds_per_iteration == 0.0

    def test_total_counters_sum(self):
        result = make_result([0], [1.0, 1.0, 1.0])
        assert result.total_counters.global_load_transactions == 30


class TestCommunities:
    def test_grouping(self):
        result = make_result([5, 5, 9, 5, 9], [1.0])
        communities = result.communities()
        assert sorted(communities) == [5, 9]
        assert sorted(communities[5].tolist()) == [0, 1, 3]
        assert sorted(communities[9].tolist()) == [2, 4]

    def test_sizes_descending(self):
        result = make_result([1, 1, 1, 2, 2, 3], [1.0])
        assert result.community_sizes().tolist() == [3, 2, 1]

    def test_singleton_labels(self):
        result = make_result([0, 1, 2], [1.0])
        assert len(result.communities()) == 3


class TestSerialization:
    def test_labels_hash_depends_on_content(self):
        a = make_result([0, 0, 1], [1.0])
        b = make_result([0, 0, 1], [2.0])
        c = make_result([0, 1, 1], [1.0])
        assert a.labels_hash() == b.labels_hash()
        assert a.labels_hash() != c.labels_hash()

    def test_labels_hash_depends_on_dtype(self):
        a = make_result(np.array([0, 1], dtype=np.int32), [1.0])
        b = make_result(np.array([0, 1], dtype=np.int64), [1.0])
        assert a.labels_hash() != b.labels_hash()

    def test_summary_fields(self):
        result = make_result([0, 0, 1], [0.5, 1.5])
        summary = result.summary()
        assert summary["num_vertices"] == 3
        assert summary["iterations"] == 2
        assert summary["converged"] is True
        assert summary["num_communities"] == 2
        assert summary["total_seconds"] == 2.0
        assert summary["counters"]["global_transactions"] == 20

    def test_to_json_round_trips(self):
        result = make_result([0, 0, 1], [0.5, 1.5])
        doc = json.loads(result.to_json(indent=2))
        assert doc["labels_hash"] == result.labels_hash()
        assert len(doc["per_iteration"]) == 2
        assert doc["per_iteration"][0]["iteration"] == 1
        assert doc["per_iteration"][0]["pass_mode"] == "dense"
