"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "dblp"])
        assert args.engine == "glp"
        assert args.algorithm == "classic"
        assert args.iterations == 20

    def test_bench_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out


class TestRunCommand:
    def test_run_on_dataset(self, capsys):
        code = main(["run", "dblp", "--iterations", "3",
                     "--no-early-stop"])
        out = capsys.readouterr().out
        assert code == 0
        assert "communities" in out
        assert "modeled time" in out
        assert "dblp" in out

    def test_run_llp(self, capsys):
        code = main([
            "run", "roadNet", "--algorithm", "llp", "--gamma", "2",
            "--iterations", "3", "--engine", "serial",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "llp(gamma=2)" in out

    def test_run_on_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "tiny.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        code = main(["run", str(path), "--iterations", "2"])
        assert code == 0
        assert "V=3" in capsys.readouterr().out

    def test_run_cpu_engine_has_no_counters_line(self, capsys):
        main(["run", "dblp", "--engine", "omp", "--iterations", "2",
              "--no-early-stop"])
        out = capsys.readouterr().out
        assert "global traffic" not in out


class TestOtherCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "aligraph" in out and "twitter" in out

    def test_bench_table2(self, capsys):
        assert main(["bench", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_bench_theory(self, capsys):
        assert main(["bench", "theory"]) == 0
        assert "Lemma1" in capsys.readouterr().out

    def test_pipeline(self, capsys):
        code = main([
            "pipeline", "--days", "10", "--window", "5", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "LP share" in out
        assert "fraud clusters" in out
