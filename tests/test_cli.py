"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "dblp"])
        assert args.engine == "glp"
        assert args.algorithm == "classic"
        assert args.iterations == 20

    def test_bench_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out


class TestRunCommand:
    def test_run_on_dataset(self, capsys):
        code = main(["run", "dblp", "--iterations", "3",
                     "--no-early-stop"])
        out = capsys.readouterr().out
        assert code == 0
        assert "communities" in out
        assert "modeled time" in out
        assert "dblp" in out

    def test_run_llp(self, capsys):
        code = main([
            "run", "roadNet", "--algorithm", "llp", "--gamma", "2",
            "--iterations", "3", "--engine", "serial",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "llp(gamma=2)" in out

    def test_run_on_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "tiny.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        code = main(["run", str(path), "--iterations", "2"])
        assert code == 0
        assert "V=3" in capsys.readouterr().out

    def test_run_cpu_engine_has_no_counters_line(self, capsys):
        main(["run", "dblp", "--engine", "omp", "--iterations", "2",
              "--no-early-stop"])
        out = capsys.readouterr().out
        assert "global traffic" not in out


class TestOtherCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "aligraph" in out and "twitter" in out

    def test_bench_table2(self, capsys):
        assert main(["bench", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_bench_theory(self, capsys):
        assert main(["bench", "theory"]) == 0
        assert "Lemma1" in capsys.readouterr().out

    def test_pipeline(self, capsys):
        code = main([
            "pipeline", "--days", "10", "--window", "5", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "LP share" in out
        assert "fraud clusters" in out


class TestObservability:
    def test_run_json(self, capsys):
        code = main(["run", "dblp", "--iterations", "3", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["engine"] == "GLP"
        assert doc["iterations"] == 3
        assert "labels_hash" in doc
        assert len(doc["per_iteration"]) == 3

    def test_run_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "run", "dblp", "--iterations", "3",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        trace = json.loads(trace_path.read_text())
        kernels = [
            e for e in trace["traceEvents"] if e.get("cat") == "kernel"
        ]
        assert kernels and all(e["ph"] == "X" for e in kernels)
        metrics = json.loads(metrics_path.read_text())
        names = {m["name"] for m in metrics["metrics"]}
        assert "engine_iteration_seconds" in names

    def test_run_prometheus_metrics(self, tmp_path):
        path = tmp_path / "metrics.prom"
        main([
            "run", "dblp", "--iterations", "2",
            "--metrics-out", str(path),
            "--metrics-format", "prometheus",
        ])
        text = path.read_text()
        assert "# TYPE engine_iteration_seconds summary" in text
        assert 'quantile="0.99"' in text

    def test_run_without_obs_flags_writes_nothing(self, capsys):
        code = main(["run", "dblp", "--iterations", "2"])
        assert code == 0
        assert "trace written" not in capsys.readouterr().out

    def test_pipeline_trace_out(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main([
            "pipeline", "--days", "8", "--window", "4",
            "--trace-out", str(path),
        ])
        assert code == 0
        trace = json.loads(path.read_text())
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert "pipeline" in cats

    def test_profile_table(self, capsys):
        code = main([
            "profile", "--dataset", "dblp", "--iterations", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[kernel total]" in out
        assert "Time(%)" in out

    def test_profile_json_sorted_by_launches(self, capsys):
        code = main([
            "profile", "--dataset", "dblp", "--iterations", "3",
            "--sort-by", "launches", "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        launches = [k["launches"] for k in doc["kernels"]]
        assert launches == sorted(launches, reverse=True)

    def test_profile_rejects_unknown_sort(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--sort-by", "vibes"])


class TestCheckCommand:
    FIXTURES = "tests/analysis/fixtures"

    def test_check_defaults_are_clean(self, capsys):
        code = main(["check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out

    def test_check_fixtures_exit_nonzero_with_attribution(self, capsys):
        code = main(["check", self.FIXTURES])
        out = capsys.readouterr().out
        assert code == 1
        assert "lint-non-atomic-rmw" in out
        assert "broken_shared_counter.py" in out
        assert "lint-missing-barrier" in out

    def test_check_json_and_out(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        code = main([
            "check", self.FIXTURES, "--json", "--out", str(path),
        ])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc == json.loads(path.read_text())
        assert doc["source"] == "lint"
        assert doc["num_errors"] > 0

    def test_check_all_defaults_are_clean(self, capsys):
        code = main(["check", "--all"])
        out = capsys.readouterr().out
        assert code == 0
        # One report per layer, each with its own unit noun.
        for unit in ("file(s)", "site(s)", "interface(s)", "literal(s)"):
            assert unit in out

    def test_check_all_fixtures_flag_every_layer(self, capsys):
        code = main(["check", "--all", self.FIXTURES])
        out = capsys.readouterr().out
        assert code == 1
        for rule in (
            "lint-non-atomic-rmw",
            "dataflow-oob-possible",
            "dataflow-nonmonotone-update",
            "contract-missing-capability-kwarg",
            "contract-hook-signature-mismatch",
            "consistency-metric-drift",
        ):
            assert rule in out

    def test_fail_on_gates_warning_only_reports(self, capsys):
        fixture = self.FIXTURES + "/scatter_overlap.py"
        assert main(["check", "--all", fixture]) == 0
        capsys.readouterr()
        assert main(["check", "--all", fixture, "--fail-on", "error"]) == 0
        capsys.readouterr()
        code = main(["check", "--all", fixture, "--fail-on", "warning"])
        assert code == 1
        assert "dataflow-overlap-possible" in capsys.readouterr().out

    def test_check_all_combined_json_and_out_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "reports"
        code = main([
            "check", "--all", self.FIXTURES, "--json",
            "--out-dir", str(out_dir),
        ])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] >= 1
        assert set(doc["reports"]) == {
            "lint", "dataflow", "contracts", "consistency",
        }
        for source, report in doc["reports"].items():
            assert report["source"] == source
            on_disk = json.loads((out_dir / (source + ".json")).read_text())
            assert on_disk == report


class TestSanitizeFlag:
    def test_sanitized_run_matches_plain_run(self, capsys):
        base = main(["run", "dblp", "--iterations", "3", "--json"])
        base_doc = json.loads(capsys.readouterr().out)
        code = main(["run", "dblp", "--iterations", "3", "--json",
                     "--sanitize"])
        captured = capsys.readouterr()
        assert base == code == 0
        assert json.loads(captured.out) == base_doc
        assert "0 error(s)" in captured.err

    def test_sanitize_out_writes_report(self, tmp_path, capsys):
        path = tmp_path / "san.json"
        code = main([
            "run", "dblp", "--iterations", "3",
            "--sanitize", "--sanitize-out", str(path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "sanitizer:" in out
        doc = json.loads(path.read_text())
        assert doc["source"] == "sanitizer"
        assert doc["num_errors"] == 0
        assert doc["checked"] > 0

    def test_frontier_mode_runs_on_glp(self, capsys):
        code = main([
            "run", "youtube", "--iterations", "3",
            "--frontier", "auto", "--sanitize",
        ])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_frontier_mode_rejected_off_glp(self, capsys):
        code = main([
            "run", "dblp", "--engine", "gsort", "--frontier", "auto",
        ])
        assert code == 2
        assert "requires --engine glp" in capsys.readouterr().err


class TestResilienceFlags:
    def test_injected_fault_recovers(self, capsys):
        base = main(["run", "dblp", "--iterations", "3", "--json"])
        base_doc = json.loads(capsys.readouterr().out)
        code = main([
            "run", "dblp", "--iterations", "3", "--json",
            "--inject", "kernel@5", "--retries", "2",
        ])
        captured = capsys.readouterr()
        assert base == code == 0
        doc = json.loads(captured.out)
        # Labels are bitwise identical; modeled time is not compared —
        # the retried iteration's device work is genuinely re-executed.
        assert doc["labels_hash"] == base_doc["labels_hash"]
        assert doc["iterations"] == base_doc["iterations"]
        assert "faults injected" in captured.err
        assert "kernel@launch#5" in captured.err

    def test_unrecovered_fault_exits_nonzero(self, capsys):
        code = main([
            "run", "dblp", "--iterations", "3",
            "--inject", "kernel@5x9999", "--retries", "1",
        ])
        assert code == 1
        assert "device fault" in capsys.readouterr().err

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        base = main(["run", "dblp", "--iterations", "3", "--json",
                     "--no-early-stop"])
        base_doc = json.loads(capsys.readouterr().out)
        code = main([
            "run", "dblp", "--iterations", "3", "--no-early-stop",
            "--inject", "kernel@8x9999", "--retries", "0",
            "--checkpoint-dir", str(tmp_path),
        ])
        capsys.readouterr()
        assert code == 1
        code = main([
            "run", "dblp", "--iterations", "3", "--no-early-stop",
            "--json", "--resume", str(tmp_path),
        ])
        resumed = json.loads(capsys.readouterr().out)
        assert code == 0
        assert resumed["labels_hash"] == base_doc["labels_hash"]

    def test_resilience_flags_need_device_engine(self, capsys):
        code = main([
            "run", "dblp", "--engine", "serial",
            "--inject", "kernel@1",
        ])
        assert code == 2
        assert "device engine" in capsys.readouterr().err


class TestChaosCommand:
    def test_chaos_sweep_clean(self, capsys):
        code = main([
            "chaos", "--dataset", "dblp", "--plans", "2",
            "--iterations", "4", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "reference" in out
        assert "recovered" in out
        assert "0 error(s)" in out

    def test_chaos_json_and_out(self, tmp_path, capsys):
        path = tmp_path / "chaos.json"
        code = main([
            "chaos", "--dataset", "dblp", "--plans", "2",
            "--iterations", "4", "--json", "--out", str(path),
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert len(doc["runs"]) == 2
        assert doc["analysis"]["source"] == "chaos"
        saved = json.loads(path.read_text())
        assert saved["source"] == "chaos"
        assert saved["num_errors"] == 0

    def test_chaos_seed_determinism(self, capsys):
        main(["chaos", "--dataset", "dblp", "--plans", "2",
              "--iterations", "4", "--seed", "9", "--json"])
        first = json.loads(capsys.readouterr().out)
        main(["chaos", "--dataset", "dblp", "--plans", "2",
              "--iterations", "4", "--seed", "9", "--json"])
        second = json.loads(capsys.readouterr().out)
        assert first["runs"] == second["runs"]


class TestServingObservability:
    def _pipeline(self, tmp_path, *extra):
        return main([
            "pipeline", "--days", "12", "--window", "6", "--slides", "2",
            "--incremental",
            "--journal-out", str(tmp_path / "journal.jsonl"),
            "--metrics-out", str(tmp_path / "metrics.json"),
            *extra,
        ])

    def test_pipeline_journal_out(self, tmp_path, capsys):
        code = self._pipeline(tmp_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "journal written" in out
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["event"] == "journal.meta"
        assert meta["schema_version"] == 1
        events = [json.loads(l) for l in lines[1:]]
        assert {"slide.start", "slide.plan", "slide.end"} <= {
            e["event"] for e in events
        }
        # 1 cold start + 2 slides.
        assert len({e["slide_id"] for e in events if e["slide_id"]}) == 3
        assert all(e["run_id"] == meta["run_id"] for e in events)

    def test_pipeline_slo_ok(self, tmp_path, capsys):
        code = self._pipeline(
            tmp_path,
            "--slo", "benchmarks/serving_slo.toml",
            "--slo-out", str(tmp_path / "slo.json"),
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "slo: 10 objective(s), 0 breached" in out
        doc = json.loads((tmp_path / "slo.json").read_text())
        assert doc["source"] == "slo"
        assert len(doc["verdicts"]) == 10

    def test_pipeline_slo_breach_exits_nonzero(self, tmp_path, capsys):
        spec = tmp_path / "strict.toml"
        spec.write_text(
            'schema_version = 1\n'
            '[[slo]]\n'
            'name = "impossible"\n'
            'kind = "latency"\n'
            'metric = "pipeline_e2e_modeled_seconds"\n'
            'percentile = 95.0\n'
            'objective = 0.0\n'
        )
        code = self._pipeline(tmp_path, "--slo", str(spec))
        out = capsys.readouterr().out
        assert code == 1
        assert "BREACH" in out

    def test_pipeline_report_out(self, tmp_path, capsys):
        code = self._pipeline(
            tmp_path,
            "--slo", "benchmarks/serving_slo.toml",
            "--report-out", str(tmp_path / "report.md"),
        )
        assert code == 0
        text = (tmp_path / "report.md").read_text()
        assert "# Serving run report" in text
        assert "## Slides" in text
        assert "## SLO verdicts" in text

    def test_obs_report_from_artifacts(self, tmp_path, capsys):
        self._pipeline(tmp_path)
        capsys.readouterr()
        code = main([
            "obs", "report",
            "--journal", str(tmp_path / "journal.jsonl"),
            "--metrics", str(tmp_path / "metrics.json"),
            "--slo", "benchmarks/serving_slo.toml",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "# Serving run report" in out
        assert "slide-0001" in out
        assert "slide-e2e-p95" in out

    def test_obs_report_json_format(self, tmp_path, capsys):
        self._pipeline(tmp_path)
        capsys.readouterr()
        code = main([
            "obs", "report",
            "--journal", str(tmp_path / "journal.jsonl"),
            "--format", "json",
            "--out", str(tmp_path / "report.json"),
        ])
        assert code == 0
        doc = json.loads((tmp_path / "report.json").read_text())
        assert doc["schema_version"] >= 1
        assert len(doc["journal"]["slides"]) == 3

    def test_obs_report_slo_requires_metrics(self, capsys):
        code = main([
            "obs", "report", "--slo", "benchmarks/serving_slo.toml",
        ])
        assert code == 2
