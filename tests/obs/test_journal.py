"""Tests for the correlated event journal (``repro.obs.journal``).

Covers the journal data structure, the module-level ``emit`` /
``correlate`` / ``mint_id`` helpers and their zero-cost disabled
behaviour, the JSONL round-trip with its ``journal.meta`` header, and the
end-to-end correlation chains the engines / recovery layer / sliding
detector write — including the metric-consistency contract across slide
rollback + replay.
"""

import json

import numpy as np
import pytest

from repro import ClassicLP, GLPEngine, obs
from repro.errors import KernelAbortFault, OutOfDeviceMemoryError
from repro.graph.generators import planted_partition_graph
from repro.obs.journal import (
    JOURNAL_SCHEMA_VERSION,
    Journal,
    mint_run_id,
    read_journal,
)
from repro.pipeline.detector import ClusterDetector
from repro.pipeline.incremental import SlidingWindowDetector
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)
from repro.resilience import FaultPlan, RetryPolicy, inject


@pytest.fixture(scope="module")
def graph():
    graph, _ = planted_partition_graph(240, 6, 8.0, 0.9, seed=7)
    return graph


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=800,
            num_products=400,
            num_days=12,
            transactions_per_day=400,
            num_rings=3,
            ring_size=6,
            seed=33,
        )
    )


class TestJournalUnit:
    def test_envelope_and_seq(self):
        journal = Journal(run_id="run-test")
        first = journal.record("a.start", slide_id="slide-0001")
        second = journal.record("a.end", fields={"ok": True})
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["run_id"] == "run-test"
        assert first["slide_id"] == "slide-0001"
        assert first["attempt_id"] == ""
        assert isinstance(first["ts_us"], int) and first["ts_us"] >= 0
        assert second["ok"] is True

    def test_payload_cannot_override_envelope(self):
        journal = Journal()
        record = journal.record(
            "evt", fields={"seq": 999, "run_id": "spoof", "x": 1}
        )
        assert record["seq"] == 1
        assert record["run_id"] == journal.run_id
        assert record["x"] == 1

    def test_numpy_payloads_coerced_to_json_clean(self):
        journal = Journal()
        journal.record(
            "evt",
            fields={"n": np.int64(7), "f": np.float32(0.5), "a": [1, 2]},
        )
        # Round-trips through json without a custom encoder.
        parsed = json.loads(journal.to_jsonl().splitlines()[1])
        assert parsed["n"] == 7
        assert parsed["f"] == 0.5

    def test_events_for_filters(self):
        journal = Journal()
        journal.record("a", slide_id="s1")
        journal.record("a", slide_id="s2")
        journal.record("b", slide_id="s1", attempt_id="t1")
        assert len(journal.events_for(event="a")) == 2
        assert len(journal.events_for(slide_id="s1")) == 2
        assert len(journal.events_for(event="b", attempt_id="t1")) == 1
        assert journal.slide_ids() == ["s1", "s2"]

    def test_jsonl_roundtrip_with_meta_header(self, tmp_path):
        journal = Journal()
        journal.record("a", slide_id="s1", fields={"k": 1})
        journal.record("b")
        path = tmp_path / "journal.jsonl"
        journal.write(str(path))
        records = read_journal(str(path))
        meta, events = records[0], records[1:]
        assert meta["event"] == "journal.meta"
        assert meta["seq"] == 0
        assert meta["schema_version"] == JOURNAL_SCHEMA_VERSION
        assert meta["run_id"] == journal.run_id
        assert meta["num_events"] == 2
        assert [e["event"] for e in events] == ["a", "b"]
        assert all(e["run_id"] == journal.run_id for e in events)

    def test_mint_run_id_unique(self):
        assert mint_run_id() != mint_run_id()
        assert mint_run_id().startswith("run-")


class TestDisabledHelpers:
    def test_emit_is_noop_without_session(self):
        obs.emit("anything", x=1)  # must not raise
        assert obs.journal() is None
        assert obs.flight() is None

    def test_mint_id_empty_when_disabled(self):
        assert obs.mint_id("slide") == ""

    def test_correlate_passthrough_when_disabled(self):
        with obs.correlate(slide_id="slide-0001"):
            obs.emit("evt")
        assert obs.session() is None

    def test_emit_is_noop_without_journal(self):
        with obs.observe(journal=False) as session:
            obs.emit("evt")
            assert session.journal is None
            assert session.flight is None
            assert obs.mint_id("slide") == ""


class TestCorrelation:
    def test_mint_id_sequential_per_kind(self):
        with obs.observe() as session:
            assert session.mint_id("slide") == "slide-0001"
            assert session.mint_id("slide") == "slide-0002"
            assert session.mint_id("attempt") == "attempt-0001"

    def test_correlate_scopes_and_restores(self):
        with obs.observe() as session:
            with obs.correlate(slide_id="slide-0001"):
                obs.emit("outer")
                with obs.correlate(attempt_id="attempt-0001"):
                    obs.emit("inner")
                obs.emit("after-inner")
            obs.emit("after-outer")
            events = {e["event"]: e for e in session.journal.events}
        assert events["outer"]["slide_id"] == "slide-0001"
        assert events["outer"]["attempt_id"] == ""
        assert events["inner"]["attempt_id"] == "attempt-0001"
        assert events["after-inner"]["attempt_id"] == ""
        assert events["after-outer"]["slide_id"] == ""

    def test_emit_feeds_flight_ring(self):
        with obs.observe() as session:
            obs.emit("evt", x=1)
            assert len(session.flight) == 1
            assert session.flight.tail()[0]["event"] == "evt"

    def test_span_inherits_correlation_ids(self):
        with obs.observe() as session:
            with obs.correlate(slide_id="slide-0001", attempt_id="a-1"):
                with obs.span("work"):
                    pass
        spans = [e for e in session.tracer.events if e.get("ph") == "X"]
        args = spans[0]["args"]
        assert args["slide_id"] == "slide-0001"
        assert args["attempt_id"] == "a-1"


class TestEngineAttemptChain:
    def test_clean_run_records_one_attempt(self, graph):
        with obs.observe() as session:
            GLPEngine().run(graph, ClassicLP(), max_iterations=6)
        starts = session.journal.events_for(event="engine.attempt.start")
        ends = session.journal.events_for(event="engine.attempt.end")
        assert len(starts) == 1 and len(ends) == 1
        assert starts[0]["attempt_id"] == ends[0]["attempt_id"]
        assert ends[0]["outcome"] == "ok"

    def test_faulted_run_chains_attempts_through_recovery(self, graph):
        """One injected transient fault: attempt 1 faults, recovery
        restores, attempt 2 finishes — all under distinct attempt IDs."""
        with obs.observe() as session:
            with inject(FaultPlan.parse("kernel@3")):
                GLPEngine().run(
                    graph, ClassicLP(), max_iterations=6,
                    retry_policy=RetryPolicy(max_retries=2),
                )
        journal = session.journal
        starts = journal.events_for(event="engine.attempt.start")
        faults = journal.events_for(event="engine.attempt.fault")
        restores = journal.events_for(event="recovery.restore")
        decisions = journal.events_for(event="recovery.fault")
        ends = journal.events_for(event="engine.attempt.end")
        assert len(starts) == 2
        assert len(faults) == 1 and faults[0]["kind"] == "kernel"
        assert len(restores) == 1
        assert [d["decision"] for d in decisions] == ["retry"]
        assert len(ends) == 1 and ends[0]["outcome"] == "ok"
        # The fault, its recovery decision and the restore all carry the
        # *failed* attempt's ID; the successful end carries the new one.
        failed_id = starts[0]["attempt_id"]
        assert faults[0]["attempt_id"] == failed_id
        assert decisions[0]["attempt_id"] == failed_id
        assert restores[0]["attempt_id"] == failed_id
        assert ends[0]["attempt_id"] == starts[1]["attempt_id"]
        assert ends[0]["attempt_id"] != failed_id
        # fault.injected from the simulator hook lands in the same chain.
        injected = journal.events_for(event="fault.injected")
        assert len(injected) == 1
        assert injected[0]["attempt_id"] == failed_id

    def test_checkpoint_events_carry_path_annotation(self, graph):
        with obs.observe() as session:
            GLPEngine().run(
                graph, ClassicLP(), max_iterations=6,
                retry_policy=RetryPolicy(),
            )
            ckpts = session.journal.events_for(event="recovery.checkpoint")
            assert ckpts
            assert all("iteration" in c for c in ckpts)
            assert session.context["checkpoint"]["iteration"] == int(
                ckpts[-1]["iteration"]
            )


class TestSlideChain:
    def test_slide_chain_is_complete_and_correlated(self, stream):
        detector = SlidingWindowDetector(
            stream,
            ClusterDetector(GLPEngine(frontier="auto")),
            incremental=True,
        )
        with obs.observe() as session:
            detector.start(0, 6)
            detector.slide()
            detector.slide()
        journal = session.journal
        slides = journal.slide_ids()
        assert slides == ["slide-0001", "slide-0002", "slide-0003"]
        cold = journal.events_for(slide_id=slides[0])
        assert [e["event"] for e in cold[:2]] == ["slide.start", "slide.plan"]
        assert cold[0]["kind"] == "cold"
        for sid in slides[1:]:
            chain = [e["event"] for e in journal.events_for(slide_id=sid)]
            assert chain[0] == "slide.start"
            assert "slide.diff" in chain
            assert "slide.plan" in chain
            assert "slide.detect" in chain
            assert chain[-1] == "slide.end"
        # Every event written during the sweep belongs to some slide.
        assert all(e["slide_id"] for e in journal.events)
        # Plan payloads carry the DynLP decision verbatim.
        plans = journal.events_for(event="slide.plan", slide_id=slides[-1])
        assert plans[0]["mode"] in ("incremental", "full")
        assert "reason" in plans[0] and "num_affected" in plans[0]

    def test_replay_metrics_consistent_with_journal(self, stream):
        """Satellite: a rolled-back slide must count one replay, keep the
        latency histograms at successful-slides-only, and journal the
        replay under the failed slide's ID (no double counting)."""
        detector = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine()), degrade=False
        )
        with obs.observe() as session:
            detector.start(0, 6)
            with inject(FaultPlan.parse("oom@2x999999")):
                with pytest.raises(OutOfDeviceMemoryError):
                    detector.slide()
            detector.slide()  # replay succeeds once the fault clears

            m = session.metrics
            journal = session.journal
            assert m.counter("pipeline_slide_replays_total").value == 1
            replays = journal.events_for(event="slide.replay")
            assert len(replays) == 1
            assert replays[0]["error"] == "InjectedOOMFault"
            # 3 slide IDs minted: cold, failed, replayed.
            assert len(journal.slide_ids()) == 3
            failed_id = replays[0]["slide_id"]
            failed_chain = [
                e["event"] for e in journal.events_for(slide_id=failed_id)
            ]
            assert "slide.end" not in failed_chain
            assert failed_chain[-1] == "slide.replay"
            # Latency histograms observed only the 2 *successful* slides.
            e2e = m.histogram("pipeline_e2e_modeled_seconds")
            serving = m.histogram("pipeline_serving_latency_seconds")
            assert e2e.count == 2
            assert serving.count == 2
            ends = journal.events_for(event="slide.end")
            assert len(ends) == e2e.count
