"""Differential tests: observability must not change any result.

Every hook only *reads* engine and device state; enabling tracing and
metrics must leave labels, counters and modeled timings bitwise identical.
This is the contract that lets the instrumentation live permanently in the
hot paths.
"""

import numpy as np
import pytest

from repro import obs
from repro.algorithms import ClassicLP
from repro.core.framework import GLPEngine
from repro.core.multigpu import MultiGPUEngine
from repro.pipeline import (
    ClusterDetector,
    FraudDetectionPipeline,
    TransactionStream,
    TransactionStreamConfig,
)


def _run(engine_factory, graph, **kwargs):
    return engine_factory().run(
        graph, ClassicLP(), max_iterations=5, **kwargs
    )


def _assert_identical(baseline, observed):
    assert np.array_equal(baseline.labels, observed.labels)
    assert baseline.labels.tobytes() == observed.labels.tobytes()
    assert baseline.labels_hash() == observed.labels_hash()
    assert baseline.num_iterations == observed.num_iterations
    assert baseline.total_seconds == pytest.approx(
        observed.total_seconds, rel=1e-12, abs=0.0
    )
    assert (
        baseline.total_counters.as_dict()
        == observed.total_counters.as_dict()
    )


@pytest.mark.parametrize(
    "factory",
    [
        GLPEngine,
        lambda: GLPEngine(frontier="auto"),
        lambda: MultiGPUEngine(2),
    ],
    ids=["glp-dense", "glp-frontier", "multigpu"],
)
def test_engine_results_unchanged_under_observation(powerlaw_graph, factory):
    baseline = _run(factory, powerlaw_graph)
    with obs.observe() as session:
        observed = _run(factory, powerlaw_graph)
    _assert_identical(baseline, observed)
    # The session actually recorded something — it wasn't a vacuous pass.
    assert session.tracer.num_events > 0
    assert len(session.metrics) > 0


def test_trace_has_one_span_per_kernel_launch(powerlaw_graph):
    engine = GLPEngine()
    with obs.observe() as session:
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=5)
    kernel_events = [
        e for e in session.tracer.events if e.get("cat") == "kernel"
    ]
    assert len(kernel_events) == len(engine.device.timeline)
    by_name = {}
    for event in kernel_events:
        by_name[event["name"]] = by_name.get(event["name"], 0) + 1
    for record in engine.device.timeline:
        assert by_name.get(record.name, 0) > 0


def test_pipeline_results_unchanged_under_observation():
    def run_pipeline():
        stream = TransactionStream(
            TransactionStreamConfig(num_days=8, seed=11)
        )
        detector = ClusterDetector(GLPEngine(), max_iterations=10)
        return FraudDetectionPipeline(stream, detector).run_window(4)

    baseline = run_pipeline()
    with obs.observe():
        observed = run_pipeline()
    assert baseline.num_clusters == observed.num_clusters
    assert baseline.num_fraud_clusters == observed.num_fraud_clusters
    assert baseline.lp_seconds == pytest.approx(
        observed.lp_seconds, rel=1e-12, abs=0.0
    )
    assert baseline.metrics.f1 == observed.metrics.f1


def test_disabled_span_is_shared_nullcontext():
    """With no session, obs.span() allocates nothing per call."""
    assert obs.span("a") is obs.span("b")
    with obs.span("noop"):
        pass
    assert obs.tracer() is None
    assert obs.metrics() is None


def test_observe_restores_previous_session():
    outer = obs.enable()
    try:
        with obs.observe() as inner:
            assert obs.session() is inner
        assert obs.session() is outer
    finally:
        obs.disable()


@pytest.mark.parametrize(
    "factory",
    [
        GLPEngine,
        lambda: __import__(
            "repro.core.hybrid", fromlist=["HybridEngine"]
        ).HybridEngine(),
        lambda: MultiGPUEngine(2),
    ],
    ids=["glp", "hybrid", "multigpu"],
)
def test_journal_and_flight_change_nothing(powerlaw_graph, factory):
    """The journal/flight layers must be as invisible as trace/metrics:
    identical labels with them fully on, fully off, or session-off."""
    baseline = _run(factory, powerlaw_graph)
    with obs.observe(journal=True) as on:
        journaled = _run(factory, powerlaw_graph)
    with obs.observe(journal=False):
        unjournaled = _run(factory, powerlaw_graph)
    _assert_identical(baseline, journaled)
    _assert_identical(baseline, unjournaled)
    # The journaled session actually recorded the attempt chain.
    assert on.journal.events_for(event="engine.attempt.end")


@pytest.mark.parametrize(
    "factory",
    [
        GLPEngine,
        lambda: GLPEngine(frontier="auto"),
        lambda: __import__(
            "repro.core.hybrid", fromlist=["HybridEngine"]
        ).HybridEngine(),
        lambda: MultiGPUEngine(2),
    ],
    ids=["glp-dense", "glp-frontier", "hybrid", "multigpu"],
)
def test_memory_tracking_changes_nothing(powerlaw_graph, factory):
    """--mem-profile on vs off must yield bitwise-identical results on
    every engine: the tracker only reads device state."""
    from repro.obs.memory import track

    baseline = _run(factory, powerlaw_graph)
    with obs.observe(), track() as tracker:
        tracked = _run(factory, powerlaw_graph)
    untracked = _run(factory, powerlaw_graph)
    _assert_identical(baseline, tracked)
    _assert_identical(baseline, untracked)
    assert tracker.reconciled


def test_sliding_sweeps_identical_under_memory_tracking():
    """Acceptance: memory profiling on vs off yields bitwise-identical
    labels hashes across a dense and an incremental window sweep."""
    from repro.obs.memory import track

    def sweep(incremental):
        from repro.pipeline.incremental import SlidingWindowDetector

        stream = TransactionStream(
            TransactionStreamConfig(num_days=10, seed=11)
        )
        engine = (
            GLPEngine(frontier="auto") if incremental else GLPEngine()
        )
        detector = SlidingWindowDetector(
            stream,
            ClusterDetector(engine, max_iterations=10),
            incremental=incremental,
        )
        detector.start(0, 6)
        hashes = []
        for _ in range(2):
            _, result = detector.slide()
            hashes.append(result.lp_result.labels_hash())
        return hashes

    for incremental in (False, True):
        baseline = sweep(incremental)
        with obs.observe(), track() as tracker:
            tracked = sweep(incremental)
        assert tracked == baseline
        report = tracker.report()
        assert report["reconciled"] is True
        assert report["devices"]  # the sweep was actually tracked


def test_sliding_detector_identical_under_full_observability():
    """Acceptance: journal + SLO + flight enabled vs disabled yields
    bitwise-identical labels across a dense and an incremental sweep."""
    from repro.obs.slo import evaluate_slos, load_slo_spec

    def sweep(incremental):
        from repro.pipeline.incremental import SlidingWindowDetector

        stream = TransactionStream(
            TransactionStreamConfig(num_days=10, seed=11)
        )
        engine = (
            GLPEngine(frontier="auto") if incremental else GLPEngine()
        )
        detector = SlidingWindowDetector(
            stream,
            ClusterDetector(engine, max_iterations=10),
            incremental=incremental,
        )
        detector.start(0, 6)
        hashes = []
        for _ in range(2):
            _, result = detector.slide()
            hashes.append(result.lp_result.labels_hash())
        return hashes

    for incremental in (False, True):
        baseline = sweep(incremental)
        with obs.observe() as session:
            observed = sweep(incremental)
            slo_report = evaluate_slos(
                load_slo_spec("benchmarks/serving_slo.toml"),
                session.metrics,
            )
        assert observed == baseline
        assert session.journal.events_for(event="slide.end")
        # Evaluating SLOs reads the registry without touching results.
        # (one verdict per objective in the committed serving spec)
        assert len(slo_report.verdicts) == 10
