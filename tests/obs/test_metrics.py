"""Tests for the metrics registry."""

import json

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("ops_total")
        registry.inc("ops_total", 4)
        assert registry.counter("ops_total").value == 5

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.inc("ops_total", -1)

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.inc("passes_total", 2, mode="dense")
        registry.inc("passes_total", 3, mode="sparse")
        assert registry.counter("passes_total", mode="dense").value == 2
        assert registry.counter("passes_total", mode="sparse").value == 3
        assert len(registry) == 2


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("hit_rate", 0.2)
        registry.set_gauge("hit_rate", 0.9)
        assert registry.gauge("hit_rate").value == 0.9


class TestHistogram:
    def test_percentiles_match_numpy(self):
        registry = MetricsRegistry()
        values = list(range(1, 101))
        for v in values:
            registry.observe("latency", v)
        hist = registry.histogram("latency")
        assert hist.count == 100
        assert hist.sum == sum(values)
        for q in (50.0, 95.0, 99.0):
            assert hist.percentile(q) == pytest.approx(
                np.percentile(values, q)
            )

    def test_snapshot_has_percentile_keys(self):
        registry = MetricsRegistry()
        registry.observe("latency", 1.0)
        snap = registry.histogram("latency").snapshot()
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99"):
            assert key in snap

    def test_empty_histogram_is_safe(self):
        registry = MetricsRegistry()
        snap = registry.histogram("latency").snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0

    def test_memory_bounded_under_service_load(self):
        """Regression: histograms must not grow without bound.

        A long-running scoring service observes millions of latencies
        into one histogram; retention has to stay O(max_samples) while
        count/sum/min/max remain exact over the full stream.
        """
        from repro.obs.metrics import Histogram

        hist = Histogram()
        n = 1_000_000
        for v in range(n):
            hist.observe(float(v))
        assert len(hist.values) == Histogram.MAX_SAMPLES
        assert hist.count == n
        assert hist.sum == pytest.approx(n * (n - 1) / 2)
        snap = hist.snapshot()
        assert snap["min"] == 0.0
        assert snap["max"] == float(n - 1)

    def test_ring_keeps_most_recent_tail_in_order(self):
        from repro.obs.metrics import Histogram

        hist = Histogram(max_samples=4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            hist.observe(v)
        assert hist.values == (3.0, 4.0, 5.0, 6.0)
        assert hist.count == 6
        assert hist.sum == 21.0
        # Percentiles describe the retained trailing window.
        assert hist.percentile(50.0) == pytest.approx(
            np.percentile([3.0, 4.0, 5.0, 6.0], 50.0)
        )

    def test_exact_until_ring_wraps(self):
        from repro.obs.metrics import Histogram

        hist = Histogram(max_samples=64)
        values = [float(v) for v in range(64)]
        for v in values:
            hist.observe(v)
        assert hist.values == tuple(values)
        assert hist.percentile(95.0) == pytest.approx(
            np.percentile(values, 95.0)
        )

    def test_invalid_capacity_rejected(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ObservabilityError):
            Histogram(max_samples=0)


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ObservabilityError):
            registry.set_gauge("x", 1.0)

    def test_to_dict_lists_every_series(self):
        registry = MetricsRegistry()
        registry.inc("runs_total", engine="GLP")
        registry.observe("iter_seconds", 0.5, engine="GLP")
        doc = registry.to_dict()
        names = {m["name"] for m in doc["metrics"]}
        assert names == {"runs_total", "iter_seconds"}
        for m in doc["metrics"]:
            assert m["labels"] == {"engine": "GLP"}

    def test_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("runs_total")
        path = tmp_path / "metrics.json"
        registry.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["metrics"][0]["name"] == "runs_total"
        assert doc["metrics"][0]["type"] == "counter"


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.inc("runs_total", 2, engine="GLP")
        registry.set_gauge("hit_rate", 0.75)
        text = registry.to_prometheus_text()
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{engine="GLP"} 2' in text
        assert "hit_rate 0.75" in text

    def test_histogram_exported_as_summary(self):
        registry = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            registry.observe("latency", v)
        text = registry.to_prometheus_text()
        assert "# TYPE latency summary" in text
        assert 'latency{quantile="0.5"} 2' in text
        assert "latency_count 3" in text
        assert "latency_sum 6" in text

    def test_hostile_label_values_escaped(self):
        r"""Regression: a label value carrying ``\``, ``"`` or a newline
        must come out as a single, legally-quoted exposition line —
        the old exporter emitted the bytes verbatim, corrupting the
        whole scrape."""
        registry = MetricsRegistry()
        registry.inc(
            "ops_total",
            path='C:\\tmp\n"quoted"',
        )
        text = registry.to_prometheus_text()
        line = next(
            l for l in text.splitlines() if l.startswith("ops_total{")
        )
        assert line == (
            'ops_total{path="C:\\\\tmp\\n\\"quoted\\""} 1'
        )
        # Still exactly one physical line per series: the newline in the
        # value must not split the exposition.
        assert text.count("ops_total{") == 1

    def test_escaping_is_identity_for_clean_values(self):
        registry = MetricsRegistry()
        registry.inc("ops_total", engine="GLP-Hybrid")
        assert 'ops_total{engine="GLP-Hybrid"} 1' in \
            registry.to_prometheus_text()


class TestSchemaVersionAndEmpty:
    def test_to_dict_carries_schema_version(self):
        from repro.obs.metrics import SCHEMA_VERSION

        assert MetricsRegistry().to_dict()["schema_version"] == \
            SCHEMA_VERSION

    def test_empty_registry_snapshot_path(self, tmp_path):
        """An empty registry (and empty histograms inside one) must
        export cleanly through every format."""
        registry = MetricsRegistry()
        registry.histogram("latency")  # created, never observed
        assert registry.histogram("latency").percentile(99.0) == 0.0
        doc = registry.to_dict()
        hist = next(m for m in doc["metrics"] if m["name"] == "latency")
        assert hist["count"] == 0
        assert hist["p50"] == hist["p95"] == hist["p99"] == 0.0
        path = tmp_path / "metrics.json"
        registry.write(str(path))
        assert json.loads(path.read_text())["schema_version"] >= 1
        assert "latency_count 0" in registry.to_prometheus_text()

    def test_histogram_values_property_is_immutable_copy(self):
        registry = MetricsRegistry()
        registry.observe("latency", 1.0)
        values = registry.histogram("latency").values
        assert values == (1.0,)
        assert isinstance(values, tuple)
