"""Tests for the span tracer and its Chrome trace_event exporter."""

import json
import time

import pytest

from repro.obs.trace import DEVICE_PID, HOST_PID, Tracer


class TestHostSpans:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", cat="test", args={"k": 1}):
            pass
        assert tracer.num_events == 1
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["pid"] == HOST_PID
        assert event["args"] == {"k": 1}
        assert event["dur"] >= 0

    def test_nested_spans_are_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # Spans close inner-first, so the event list is [inner, outer].
        inner, outer = tracer.events
        assert inner["name"] == "inner"
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.num_events == 1

    def test_host_event_uses_external_start(self):
        tracer = Tracer()
        start = time.perf_counter()
        tracer.host_event("late", start, cat="engine", args={"n": 2})
        (event,) = tracer.events
        assert event["name"] == "late"
        assert event["cat"] == "engine"
        assert event["dur"] >= 0

    def test_instant_marker(self):
        tracer = Tracer()
        tracer.instant("tick")
        (event,) = tracer.events
        assert event["ph"] == "i"


class TestDeviceSpans:
    def test_device_span_lives_on_modeled_track(self):
        tracer = Tracer()
        tracer.device_span(0, "kern", 1e-6, 2e-6, args={"x": 1})
        (event,) = tracer.events
        assert event["pid"] == DEVICE_PID
        assert event["tid"] == 0
        assert event["ts"] == pytest.approx(1.0)   # microseconds
        assert event["dur"] == pytest.approx(2.0)

    def test_sequential_spans_do_not_overlap(self):
        tracer = Tracer()
        tracer.device_span(0, "a", 0.0, 1e-6)
        tracer.device_span(0, "b", 1e-6, 1e-6)
        a, b = tracer.events
        assert a["ts"] + a["dur"] <= b["ts"] + 1e-9


class TestExport:
    def test_chrome_trace_has_metadata_tracks(self):
        tracer = Tracer()
        with tracer.span("host-work"):
            pass
        tracer.device_span(1, "kern", 0.0, 1e-6)
        doc = tracer.chrome_trace()
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {
            (e["name"], e["args"]["name"]) for e in meta
        }
        assert ("process_name", "host (wall clock)") in names
        assert ("process_name", "gpusim (modeled clock)") in names
        assert ("thread_name", "gpu1") in names

    def test_write_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        doc = json.loads(path.read_text())
        assert any(
            e.get("ph") == "X" and e["name"] == "work"
            for e in doc["traceEvents"]
        )
        assert doc["displayTimeUnit"] == "ms"


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored"):
            tracer.instant("ignored")
        tracer.device_span(0, "ignored", 0.0, 1.0)
        tracer.host_event("ignored", time.perf_counter())
        assert tracer.num_events == 0
        # Export still works — just metadata plus nothing.
        assert all(
            e["ph"] == "M" for e in tracer.chrome_trace()["traceEvents"]
        )


class TestSchemaVersion:
    def test_chrome_trace_carries_schema_version(self):
        from repro.obs.trace import SCHEMA_VERSION

        tracer = Tracer()
        with tracer.span("work"):
            pass
        assert tracer.chrome_trace()["schema_version"] == SCHEMA_VERSION

    def test_written_file_carries_schema_version(self, tmp_path):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        assert json.loads(path.read_text())["schema_version"] >= 1
