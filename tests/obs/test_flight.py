"""Tests for the flight recorder and its post-mortem bundles.

Ring-buffer bounding, bundle payloads (events, metrics, fault plan,
context annotations), dump-to-disk, and the acceptance scenario: a
chaos-injected fault whose post-mortem correlation chain reconstructs
the failed slide — plan, attempts, recovery decisions, degradation.
"""

import json

import pytest

from repro import ClassicLP, GLPEngine, obs
from repro.errors import OutOfDeviceMemoryError
from repro.obs.flight import FLIGHT_SCHEMA_VERSION, FlightRecorder
from repro.pipeline.detector import ClusterDetector
from repro.pipeline.incremental import SlidingWindowDetector
from repro.pipeline.transactions import (
    TransactionStream,
    TransactionStreamConfig,
)
from repro.resilience import FaultPlan, inject


@pytest.fixture(scope="module")
def stream():
    return TransactionStream(
        TransactionStreamConfig(
            num_users=800,
            num_products=400,
            num_days=12,
            transactions_per_day=400,
            num_rings=3,
            ring_size=6,
            seed=33,
        )
    )


class TestRing:
    def test_bounded_at_capacity(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record({"seq": i, "event": f"e{i}"})
        assert len(recorder) == 3
        assert [e["seq"] for e in recorder.tail()] == [7, 8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_session_ring_capacity_configurable(self):
        with obs.observe(flight_capacity=2) as session:
            for _ in range(5):
                obs.emit("evt")
            assert len(session.flight) == 2
            assert len(session.journal) == 5  # journal is unbounded


class TestDump:
    def test_bundle_payload(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record({"seq": 1, "event": "a"})
        bundle = recorder.dump(
            trigger="degradation",
            ids={"run_id": "run-x", "slide_id": "slide-0002",
                 "attempt_id": ""},
            context={"checkpoint": {"iteration": 3}},
            metrics={"metrics": []},
            details={"kind": "oom"},
        )
        assert bundle["schema_version"] == FLIGHT_SCHEMA_VERSION
        assert bundle["trigger"] == "degradation"
        assert bundle["run_id"] == "run-x"
        assert bundle["slide_id"] == "slide-0002"
        assert bundle["details"] == {"kind": "oom"}
        assert bundle["context"]["checkpoint"]["iteration"] == 3
        assert bundle["fault_plan"] is None  # nothing installed
        assert [e["event"] for e in bundle["events"]] == ["a"]
        assert recorder.bundles == [bundle]

    def test_dump_writes_file_when_dir_configured(self, tmp_path):
        recorder = FlightRecorder(capacity=4, dump_dir=str(tmp_path))
        recorder.record({"seq": 1, "event": "a"})
        recorder.dump(trigger="unrecovered-fault")
        recorder.dump(trigger="degradation")
        paths = sorted(p.name for p in tmp_path.iterdir())
        assert paths == ["postmortem-001.json", "postmortem-002.json"]
        with open(tmp_path / "postmortem-001.json") as fh:
            doc = json.load(fh)
        assert doc["trigger"] == "unrecovered-fault"
        assert recorder.bundles[0]["path"].endswith("postmortem-001.json")

    def test_flight_dump_helper_noop_when_disabled(self):
        assert obs.flight_dump("degradation") is None

    def test_flight_dump_captures_active_fault_plan(self):
        with obs.observe():
            with inject(FaultPlan.parse("oom@2x3")):
                bundle = obs.flight_dump("unrecovered-fault", kind="oom")
        assert bundle["fault_plan"]["plan"] == "oom@2x3"
        assert bundle["fault_plan"]["fired"] == []  # nothing ran yet
        # The dump itself is journaled, so the bundle's last ring event
        # is its own flight.dump marker.
        assert bundle["events"][-1]["event"] == "flight.dump"
        assert bundle["events"][-1]["trigger"] == "unrecovered-fault"


class TestPostMortemAcceptance:
    def test_degradation_bundle_reconstructs_failed_slide(self, stream):
        """Acceptance: under a persistent injected OOM the detector
        degrades down the ladder; every degradation leaves a bundle whose
        ring holds the failed slide's full causal chain."""
        detector = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine())
        )
        with obs.observe() as session:
            with inject(FaultPlan.parse("oom@2x999999")):
                detector.start(0, 6)
            bundles = session.flight.bundles
        assert bundles, "degradation produced no post-mortem bundle"
        bundle = bundles[0]
        assert bundle["trigger"] == "degradation"
        assert bundle["run_id"] == session.run_id
        assert bundle["slide_id"] == "slide-0001"
        assert bundle["details"]["source"] == "GLP"
        assert bundle["details"]["kind"] == "oom"
        assert bundle["fault_plan"]["plan"] == "oom@2x999999"
        assert bundle["fault_plan"]["fired"]
        # The ring reconstructs the chain: slide start -> plan ->
        # degradation, all under the failed slide's correlation ID.
        chain = [e["event"] for e in bundle["events"]]
        for needed in ("slide.start", "slide.plan",
                       "resilience.degradation", "flight.dump"):
            assert needed in chain, f"{needed} missing from {chain}"
        assert chain.index("slide.start") < chain.index("slide.plan")
        assert chain.index("slide.plan") < chain.index(
            "resilience.degradation"
        )
        slide_events = [e for e in bundle["events"] if e["slide_id"]]
        assert all(e["slide_id"] == "slide-0001" for e in slide_events)
        # Metrics snapshot rode along.
        names = {m["name"] for m in bundle["metrics"]["metrics"]}
        assert "resilience_degradations_total" in names

    def test_fault_chain_with_recovery_then_degradation(self, stream):
        """A transient fault that exhausts its retry budget: the bundle
        chain shows attempts, the injected fault, recovery decisions and
        the eventual ladder step."""
        from repro.resilience import RetryPolicy

        detector = SlidingWindowDetector(
            stream,
            ClusterDetector(
                GLPEngine(), retry_policy=RetryPolicy(max_retries=1)
            ),
        )
        with obs.observe() as session:
            with inject(FaultPlan.parse("kernel@3x999999")):
                detector.start(0, 6)
            bundle = session.flight.bundles[0]
        chain = [e["event"] for e in bundle["events"]]
        assert "engine.attempt.start" in chain
        assert "fault.injected" in chain
        assert "engine.attempt.fault" in chain
        assert "recovery.fault" in chain
        assert "recovery.restore" in chain
        assert "resilience.degradation" in chain
        decisions = [
            e["decision"] for e in bundle["events"]
            if e["event"] == "recovery.fault"
        ]
        assert decisions == ["retry", "retry-budget-exhausted"]
        # Two attempts were made before the ladder stepped down.
        starts = [
            e for e in bundle["events"]
            if e["event"] == "engine.attempt.start"
        ]
        assert len(starts) == 2
        assert starts[0]["attempt_id"] != starts[1]["attempt_id"]

    def test_unrecovered_fault_dumps_before_raising(self, stream, tmp_path):
        detector = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine()), degrade=False
        )
        with obs.observe() as session:
            session.flight.dump_dir = str(tmp_path)
            with inject(FaultPlan.parse("oom@2x999999")):
                with pytest.raises(OutOfDeviceMemoryError):
                    detector.start(0, 6)
            assert len(session.flight.bundles) == 1
            bundle = session.flight.bundles[0]
        assert bundle["trigger"] == "unrecovered-fault"
        assert bundle["details"]["engine"] == "GLP"
        assert bundle["details"]["error"] == "InjectedOOMFault"
        # Written to disk for offline `repro obs report --postmortem`.
        with open(tmp_path / "postmortem-001.json") as fh:
            doc = json.load(fh)
        assert doc["trigger"] == "unrecovered-fault"

    def test_bundle_validates_against_schema_checker(self, stream, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_obs_schema", "benchmarks/check_obs_schema.py"
        )
        checker = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(checker)

        detector = SlidingWindowDetector(
            stream, ClusterDetector(GLPEngine())
        )
        with obs.observe() as session:
            session.flight.dump_dir = str(tmp_path)
            with inject(FaultPlan.parse("oom@2x999999")):
                detector.start(0, 6)
        path = tmp_path / "postmortem-001.json"
        checker.check_postmortem(str(path))  # SystemExit on violation
