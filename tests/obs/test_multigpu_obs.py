"""Observability under the multi-GPU engine.

The single-GPU obs tests pin down the hooks themselves; these tests pin
down the multi-device behaviours: every device gets its own span lane on
the modeled-clock track, counters attribute per device and re-aggregate
to the run totals, and the engine label / exchange metric families carry
the multi-GPU identity.
"""

import numpy as np
import pytest

from repro import obs
from repro.algorithms import ClassicLP
from repro.core.multigpu import MultiGPUEngine
from repro.gpusim.counters import PerfCounters
from repro.obs.profile import ProfileReport
from repro.obs.trace import DEVICE_PID


@pytest.fixture()
def multigpu_session(powerlaw_graph):
    """One observed 2-GPU run: (engine, result, session)."""
    engine = MultiGPUEngine(2)
    with obs.observe() as session:
        result = engine.run(
            powerlaw_graph,
            ClassicLP(),
            max_iterations=4,
            stop_on_convergence=False,
        )
    return engine, result, session


class TestDeviceSpanLanes:
    def test_each_device_gets_its_own_lane(self, multigpu_session):
        _, _, session = multigpu_session
        kernel_events = [
            e
            for e in session.tracer.events
            if e["pid"] == DEVICE_PID and e["cat"] == "kernel"
        ]
        assert kernel_events
        assert {e["tid"] for e in kernel_events} == {0, 1}

    def test_thread_name_metadata_per_device(self, multigpu_session):
        _, _, session = multigpu_session
        meta = [
            e
            for e in session.tracer.chrome_trace()["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        names = {e["args"]["name"] for e in meta}
        assert {"gpu0", "gpu1"} <= names

    def test_lanes_are_sequential_per_device(self, multigpu_session):
        _, _, session = multigpu_session
        for tid in (0, 1):
            lane = [
                e
                for e in session.tracer.events
                if e["pid"] == DEVICE_PID and e["tid"] == tid
            ]
            ends = 0.0
            for event in lane:
                assert event["ts"] >= ends - 1e-9
                ends = event["ts"] + event["dur"]

    def test_iteration_host_events_present(self, multigpu_session):
        _, result, session = multigpu_session
        iteration_events = [
            e
            for e in session.tracer.events
            if e["cat"] == "engine" and e["name"].startswith("iteration ")
        ]
        assert len(iteration_events) == result.num_iterations


class TestCounterAttribution:
    def test_device_timelines_reaggregate_to_run_totals(
        self, multigpu_session
    ):
        engine, result, _ = multigpu_session
        merged = PerfCounters()
        for device in engine.devices:
            for record in device.timeline:
                merged.add(record.counters)
        total = result.total_counters
        # Kernel-side events attribute exactly: the per-device launch
        # deltas are what the iteration stats accumulated.
        assert merged.global_transactions == total.global_transactions
        assert merged.warp_instructions == total.warp_instructions
        assert merged.active_lane_sum == total.active_lane_sum
        assert merged.kernel_launches == total.kernel_launches

    def test_each_device_did_work(self, multigpu_session):
        engine, _, _ = multigpu_session
        for device in engine.devices:
            assert device.timeline
            assert device.counters.global_transactions > 0

    def test_profile_report_spans_both_devices(self, multigpu_session):
        engine, _, multigpu = multigpu_session
        report = ProfileReport.from_engine(engine)
        assert report.num_devices == 2
        assert report.total_launches == sum(
            len(d.timeline) for d in engine.devices
        )


class TestMultiGPUMetrics:
    def test_engine_label_is_multigpu(self, multigpu_session):
        _, result, session = multigpu_session
        registry = session.metrics
        assert result.engine == "GLP-2GPU"
        assert registry.counter(
            "engine_runs_total", engine="GLP-2GPU"
        ).value == 1
        assert registry.counter(
            "engine_iterations_total", engine="GLP-2GPU"
        ).value == result.num_iterations

    def test_exchange_metrics_emitted(self, multigpu_session):
        _, result, session = multigpu_session
        registry = session.metrics
        exchange = registry.counter(
            "multigpu_exchange_bytes_total", engine="GLP-2GPU"
        )
        assert exchange.value > 0
        hist = registry.histogram(
            "multigpu_exchange_seconds", engine="GLP-2GPU"
        )
        assert hist.count == result.num_iterations


class TestMultiGPUIdentity:
    def test_observation_does_not_change_results(self, powerlaw_graph):
        engine_plain = MultiGPUEngine(2)
        baseline = engine_plain.run(
            powerlaw_graph,
            ClassicLP(),
            max_iterations=4,
            stop_on_convergence=False,
        )
        engine_observed = MultiGPUEngine(2)
        with obs.observe():
            observed = engine_observed.run(
                powerlaw_graph,
                ClassicLP(),
                max_iterations=4,
                stop_on_convergence=False,
            )
        assert np.array_equal(baseline.labels, observed.labels)
        assert baseline.total_seconds == observed.total_seconds
        assert (
            baseline.total_counters.as_dict()
            == observed.total_counters.as_dict()
        )
