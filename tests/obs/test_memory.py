"""Device-memory telemetry: tracker, watermarks, planner accuracy.

The load-bearing contract is *exact reconciliation*: at every tracked
event the sum of per-category live bytes must equal
``Device.allocated_bytes``, and the tracked peak must equal the device's
own high-water mark.  On top of that: category tagging threaded through
``alloc_scope``, the ``transfer_summary()`` differential audit, Chrome
counter-track export, the ``device_footprint`` planner-accuracy gate,
flight-recorder allocation snapshots and the schema checker.
"""

import importlib.util
import json
import os

import numpy as np
import pytest

from repro import obs
from repro.algorithms import ClassicLP
from repro.core.framework import GLPEngine
from repro.errors import DeviceError, OutOfDeviceMemoryError
from repro.gpusim import hooks
from repro.gpusim.config import TITAN_V, DeviceSpec
from repro.gpusim.device import Device
from repro.obs.memory import (
    CATEGORIES,
    MEMORY_SCHEMA_VERSION,
    PLANNER_ERROR_THRESHOLD,
    MemoryTracker,
    alloc_scope,
    render_memory_report,
    track,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


def _load_checker():
    path = os.path.join(REPO_ROOT, "benchmarks", "check_obs_schema.py")
    spec = importlib.util.spec_from_file_location("check_obs_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def tracker():
    with track() as t:
        yield t


# ---------------------------------------------------------------------------
# Reconciliation: the watermark report must agree with the device exactly.
# ---------------------------------------------------------------------------
class TestReconciliation:
    def test_every_event_reconciles_exactly(self, powerlaw_graph, tracker):
        engine = GLPEngine()
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=5)
        report = tracker.report()
        assert report["schema_version"] == MEMORY_SCHEMA_VERSION
        assert report["reconciled"] is True
        (dev,) = report["devices"]
        assert dev["mismatches"] == 0
        assert dev["num_events"] == len(dev["events"]) > 0
        for event in dev["events"]:
            assert event["reconciled"] is True
            assert event["live_bytes"] == event["device_allocated_bytes"]

    def test_tracked_peak_equals_device_high_water_mark(
        self, powerlaw_graph, tracker
    ):
        engine = GLPEngine()
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=5)
        (dev,) = tracker.report()["devices"]
        assert dev["peak_bytes"] == engine.device.peak_allocated_bytes > 0
        assert sum(dev["categories_at_peak"].values()) == dev["peak_bytes"]

    def test_categories_are_from_the_enum(self, powerlaw_graph, tracker):
        engine = GLPEngine(frontier="frontier")
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=5)
        (dev,) = tracker.report()["devices"]
        seen = set(dev["category_peaks"])
        assert seen <= set(CATEGORIES)
        # The frontier engine stages CSR, reversed CSR, labels and the
        # frontier bitmap — all four must be attributed, not lumped
        # into "scratch".
        assert {"csr", "reversed-csr", "labels", "frontier"} <= seen

    def test_adopts_preexisting_allocations(self):
        device = Device()
        with alloc_scope("labels", "warm"):
            handle = device.alloc((100,), np.int64)
        with track() as tracker:
            with alloc_scope("scratch", "later"):
                extra = device.alloc((10,), np.int64)
            (dev,) = tracker.report()["devices"]
            assert dev["live_bytes"] == device.allocated_bytes
            assert dev["categories_at_peak"]["labels"] == handle.nbytes
            device.free(extra)
            device.free(handle)

    def test_timeline_monotone_across_clock_resets(self, powerlaw_graph):
        with track() as tracker:
            engine = GLPEngine()
            engine.run(powerlaw_graph, ClassicLP(), max_iterations=3)
            engine.run(powerlaw_graph, ClassicLP(), max_iterations=3)
            (dev,) = tracker.report()["devices"]
        ts = [event["ts"] for event in dev["events"]]
        assert ts == sorted(ts)


# ---------------------------------------------------------------------------
# Allocation scopes and the free paths.
# ---------------------------------------------------------------------------
class TestScopesAndFrees:
    def test_alloc_scope_rejects_unknown_category(self):
        with pytest.raises(ValueError, match="unknown allocation category"):
            with alloc_scope("heap"):
                pass

    def test_alloc_scope_nests_and_restores(self):
        with alloc_scope("csr", "outer"):
            with alloc_scope("labels", "inner"):
                assert hooks.memscope() == ("labels", "inner")
            assert hooks.memscope() == ("csr", "outer")
        assert hooks.memscope() is None

    def test_track_restores_previous_tracker(self):
        outer = MemoryTracker().install()
        try:
            with track() as inner:
                assert hooks.memory() is inner
            assert hooks.memory() is outer
        finally:
            outer.uninstall()
        assert hooks.memory() is None

    def test_free_all_reports_released_bytes(self, tracker):
        device = Device()
        with alloc_scope("scratch", "test"):
            handles = [device.alloc((100,), np.int64) for _ in range(3)]
        expected = sum(h.nbytes for h in handles)
        released = device.free_all()
        assert released == expected
        assert device.allocated_bytes == 0
        (dev,) = tracker.report()["devices"]
        assert dev["freed_all_bytes"] == expected
        assert dev["freed_all_calls"] == 1
        free_events = [e for e in dev["events"] if e["op"] == "free_all"]
        assert len(free_events) == 1
        assert free_events[0]["bytes"] == expected
        assert free_events[0]["freed"] == 3
        assert free_events[0]["live_bytes"] == 0

    def test_use_after_free_names_category_and_origin(self):
        device = Device()
        with alloc_scope("frontier", "glp.residency"):
            handle = device.alloc((10,), np.int64)
        device.free(handle)
        with pytest.raises(DeviceError) as excinfo:
            device.d2h(handle)
        message = str(excinfo.value)
        assert "frontier" in message
        assert "glp.residency" in message

    def test_free_wrong_category_accounting_stays_consistent(self, tracker):
        device = Device()
        with alloc_scope("csr", "a"):
            a = device.alloc((10,), np.int64)
        with alloc_scope("labels", "b"):
            b = device.alloc((20,), np.int64)
        device.free(a)
        (dev,) = tracker.report()["devices"]
        assert "csr" not in dev["categories_at_peak"] or True
        assert dev["live_bytes"] == b.nbytes == device.allocated_bytes
        device.free(b)
        (dev,) = tracker.report()["devices"]
        assert dev["live_bytes"] == 0


# ---------------------------------------------------------------------------
# Satellite 1: transfer_summary() vs the tracker's journaled transfers.
# ---------------------------------------------------------------------------
class TestTransferAudit:
    def test_tracker_totals_match_device_summary_glp(
        self, powerlaw_graph, tracker
    ):
        engine = GLPEngine()
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=5)
        assert tracker.transfer_totals(0) == engine.device.transfer_summary()

    def test_tracker_totals_match_device_summary_hybrid_window(self):
        """Differential audit across a hybrid run with streamed deltas:
        byte totals and counts must agree exactly — no double counting
        between ``_record_memcpy`` and ``stream_to_device/host``."""
        import dataclasses

        from repro.core.hybrid import HybridEngine
        from repro.graph.generators.rmat import rmat_graph

        graph = rmat_graph(10, 6.0, seed=3, name="rmat-hybrid")
        label_bytes = (graph.num_vertices + 1) * 8
        spec = dataclasses.replace(
            TITAN_V, global_mem_bytes=5 * label_bytes + 64_000
        )
        with track() as tracker:
            engine = HybridEngine(spec=spec)
            engine.run(graph, ClassicLP(), max_iterations=5)
            summary = engine.device.transfer_summary()
            totals = tracker.transfer_totals(0)
        assert totals == summary
        # The run actually streamed label deltas (the interesting path).
        (dev,) = tracker.report()["devices"]
        assert dev["transfers"]["h2d"]["streamed_count"] > 0
        assert dev["exchange_bytes"] > 0

    def test_summary_excludes_counter_resets(self):
        """transfer_summary() must survive PerfCounters resets — its
        totals come from device-level accumulators, not counters."""
        device = Device()
        device.h2d(np.arange(100, dtype=np.int64))
        device.counters.reset()
        summary = device.transfer_summary()
        assert summary["h2d"]["bytes"] == 800
        assert summary["h2d"]["count"] == 1


# ---------------------------------------------------------------------------
# Planner accuracy: device_footprint predictions vs measured peaks.
# ---------------------------------------------------------------------------
class TestPlannerAccuracy:
    def test_glp_footprint_prediction_is_exact(self, powerlaw_graph, tracker):
        engine = GLPEngine()
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=5)
        (row,) = tracker.planner_accuracy()
        assert row["engine"] == "GLP"
        assert row["source"] == "device_footprint"
        assert row["error_ratio"] == 0.0
        assert row["within_threshold"] is True
        assert tracker.analysis_report().findings == []

    def test_underestimate_is_an_error_finding(self, powerlaw_graph):
        with track() as tracker:
            engine = GLPEngine()
            engine.run(powerlaw_graph, ClassicLP(), max_iterations=5)
            peak = engine.device.peak_allocated_bytes
            tracker.note_prediction(
                "SyntheticPlanner", engine.device, int(peak * 0.5)
            )
            report = tracker.analysis_report()
        findings = [
            f
            for f in report.findings
            if f.rule == "memory-planner-underestimate"
        ]
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "SyntheticPlanner@gpu0" in findings[0].location

    def test_overestimate_is_a_warning_finding(self, powerlaw_graph):
        with track() as tracker:
            engine = GLPEngine()
            engine.run(powerlaw_graph, ClassicLP(), max_iterations=5)
            peak = engine.device.peak_allocated_bytes
            tracker.note_prediction(
                "SyntheticPlanner", engine.device, int(peak * 2.0)
            )
            report = tracker.analysis_report()
        findings = [
            f
            for f in report.findings
            if f.rule == "memory-planner-overestimate"
        ]
        assert len(findings) == 1
        assert findings[0].severity == "warning"

    def test_within_threshold_prediction_yields_no_finding(
        self, powerlaw_graph
    ):
        with track() as tracker:
            engine = GLPEngine()
            engine.run(powerlaw_graph, ClassicLP(), max_iterations=5)
            peak = engine.device.peak_allocated_bytes
            near = int(peak * (1.0 + PLANNER_ERROR_THRESHOLD / 2))
            tracker.note_prediction("NearPlanner", engine.device, near)
            rows = {
                row["engine"]: row for row in tracker.planner_accuracy()
            }
        assert rows["NearPlanner"]["within_threshold"] is True
        hybrid_rows = [
            f
            for f in tracker.analysis_report().findings
            if "NearPlanner" in f.location
        ]
        assert hybrid_rows == []

    def test_hybrid_plan_prediction_within_threshold(self):
        from repro.bench import datasets as bench_datasets
        from repro.algorithms import SeededFraudLP
        from repro.core.hybrid import run_auto

        window = bench_datasets.taobao_window(100)
        seeds = bench_datasets.window_seeds(100)
        with track() as tracker:
            _, engine = run_auto(
                window.graph,
                SeededFraudLP(seeds),
                spec=bench_datasets.FIG7_DEVICE,
                max_iterations=3,
                stop_on_convergence=False,
            )
            rows = tracker.planner_accuracy()
        assert engine.name == "GLP-Hybrid"
        (row,) = [r for r in rows if r["engine"] == "GLP-Hybrid"]
        assert row["within_threshold"] is True


# ---------------------------------------------------------------------------
# Satellite 3: Chrome-trace counter tracks.
# ---------------------------------------------------------------------------
class TestCounterTracks:
    def test_counter_track_round_trip(self, powerlaw_graph, tmp_path):
        path = tmp_path / "trace.json"
        with obs.observe() as session:
            with track():
                GLPEngine().run(
                    powerlaw_graph, ClassicLP(), max_iterations=5
                )
            session.tracer.write(str(path))
        doc = json.loads(path.read_text())
        counters = [
            e for e in doc["traceEvents"] if e.get("ph") == "C"
        ]
        assert counters
        names = {e["name"] for e in counters}
        assert names == {"gpu0 device memory"}
        for event in counters:
            assert event["pid"] == 2  # DEVICE_PID
            assert all(
                isinstance(v, int) for v in event["args"].values()
            )

    def test_one_track_per_device_and_monotone_ts(self):
        with obs.observe() as session:
            with track():
                devices = [Device(TITAN_V, index=i) for i in range(2)]
                for device in devices:
                    with alloc_scope("scratch", "test"):
                        handle = device.alloc((1000,), np.int64)
                    device.free(handle)
        counters = [
            e for e in session.tracer.events if e.get("ph") == "C"
        ]
        names = sorted({e["name"] for e in counters})
        assert names == ["gpu0 device memory", "gpu1 device memory"]
        for name in names:
            ts = [e["ts"] for e in counters if e["name"] == name]
            assert ts == sorted(ts)

    def test_freed_categories_drop_to_zero_in_track(self):
        with obs.observe() as session:
            with track():
                device = Device()
                with alloc_scope("labels", "test"):
                    handle = device.alloc((100,), np.int64)
                device.free(handle)
        counters = [
            e for e in session.tracer.events if e.get("ph") == "C"
        ]
        assert counters[-1]["args"]["labels"] == 0

    def test_no_counter_events_without_session(self, powerlaw_graph):
        with track() as tracker:
            GLPEngine().run(powerlaw_graph, ClassicLP(), max_iterations=3)
        assert tracker.report()["devices"]  # tracked fine without tracer


# ---------------------------------------------------------------------------
# OOM snapshots and flight-recorder bundles.
# ---------------------------------------------------------------------------
class TestOomAndFlight:
    def test_oom_is_journaled_with_live_table(self):
        import dataclasses

        spec = dataclasses.replace(
            TITAN_V, name="tiny", global_mem_bytes=4096
        )
        with track() as tracker:
            device = Device(spec)
            with alloc_scope("labels", "test"):
                device.alloc((256,), np.int64)
            with pytest.raises(OutOfDeviceMemoryError):
                device.alloc((1 << 20,), np.int64)
            (dev,) = tracker.report()["devices"]
        assert dev["oom_count"] == 1
        oom_events = [e for e in dev["events"] if e["op"] == "oom"]
        assert len(oom_events) == 1
        assert oom_events[0]["bytes"] == (1 << 20) * 8
        assert oom_events[0]["live_bytes"] == 2048

    def test_allocation_snapshot_shape(self, tracker):
        device = Device()
        with alloc_scope("csr", "test"):
            handle = device.alloc((100,), np.int64)
        snapshot = tracker.allocation_snapshot()
        assert snapshot["reconciled"] is True
        (dev,) = snapshot["devices"]
        assert dev["live_bytes"] == handle.nbytes
        assert dev["by_category"] == {"csr": handle.nbytes}
        device.free(handle)

    def test_flight_bundle_carries_allocation_table(self, powerlaw_graph):
        with obs.observe() as session:
            with track():
                device = Device()
                with alloc_scope("exchange", "test"):
                    device.alloc((64,), np.int64)
                bundle = session.flight.dump(trigger="test-oom")
        assert bundle["memory"] is not None
        (dev,) = bundle["memory"]["devices"]
        assert dev["by_category"] == {"exchange": 512}

    def test_flight_bundle_memory_is_none_without_tracker(self):
        with obs.observe() as session:
            bundle = session.flight.dump(trigger="no-tracker")
        assert bundle["memory"] is None


# ---------------------------------------------------------------------------
# Report rendering and the schema checker.
# ---------------------------------------------------------------------------
class TestReportAndChecker:
    def _report_for(self, graph):
        with track() as tracker:
            GLPEngine().run(graph, ClassicLP(), max_iterations=5)
            return tracker.report()

    def test_render_memory_report(self, powerlaw_graph):
        report = self._report_for(powerlaw_graph)
        text = render_memory_report(report)
        assert "reconciled: yes" in text
        assert "gpu0" in text
        assert "planner accuracy" in text

    def test_checker_accepts_real_report(self, powerlaw_graph, tmp_path):
        checker = _load_checker()
        path = tmp_path / "memory.json"
        path.write_text(json.dumps(self._report_for(powerlaw_graph)))
        checker.check_memory(str(path))

    def test_checker_rejects_unreconciled_event(
        self, powerlaw_graph, tmp_path
    ):
        checker = _load_checker()
        report = self._report_for(powerlaw_graph)
        report["devices"][0]["events"][0]["live_bytes"] += 1
        path = tmp_path / "memory.json"
        path.write_text(json.dumps(report))
        with pytest.raises(SystemExit):
            checker.check_memory(str(path))

    def test_checker_rejects_unexplained_peak(
        self, powerlaw_graph, tmp_path
    ):
        checker = _load_checker()
        report = self._report_for(powerlaw_graph)
        report["devices"][0]["peak_bytes"] += 4096
        path = tmp_path / "memory.json"
        path.write_text(json.dumps(report))
        with pytest.raises(SystemExit):
            checker.check_memory(str(path))

    def test_checker_enums_in_sync(self):
        checker = _load_checker()
        assert checker.MEMORY_CATEGORIES == set(CATEGORIES)
        assert checker.MEMORY_SCHEMA_VERSION == MEMORY_SCHEMA_VERSION
        assert "memory" in checker.ANALYSIS_SOURCES
        assert "memory" in checker.POSTMORTEM_KEYS
        assert {
            "memory-planner-underestimate",
            "memory-planner-overestimate",
            "memory-unreconciled",
        } <= checker.ANALYSIS_RULES

    def test_bench_payload_gains_memory_block(self):
        from repro.bench.baseline import compare_payloads, run_scenario

        payload = run_scenario("dense_classic", mem_profile=True)
        assert payload["memory"]["reconciled"] is True
        rows = payload["memory"]["planner"]["accuracy"]
        assert rows and all(r["within_threshold"] for r in rows)
        # The memory block must not trip the perf gate.
        bare = dict(payload)
        del bare["memory"]
        assert compare_payloads(bare, payload, {
            "rel_tol_seconds": 0.05,
            "rel_tol_counters": 0.02,
            "rel_tol_ratio": 0.05,
        }) == []
