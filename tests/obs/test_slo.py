"""Tests for the declarative SLO monitor (``repro.obs.slo``).

Spec parsing (tomllib and the minimal fallback), the three objective
kinds, label-subset series selection, multi-window burn-rate semantics,
the analysis-report currency, and live-registry vs JSON-dump parity.
"""

import json

import pytest

from repro.analysis.findings import RULES
from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO,
    SLO_SCHEMA_VERSION,
    BurnWindow,
    _parse_toml_minimal,
    evaluate_slos,
    load_slo_spec,
    parse_slo_spec,
)

SPEC = """
schema_version = 1

[[slo]]
name = "lat-p95"
kind = "latency"
metric = "latency_seconds"
percentile = 95.0
objective = 0.5

  [[slo.windows]]
  observations = 20
  max_burn_rate = 1.0

  [[slo.windows]]
  observations = 5
  max_burn_rate = 4.0

[[slo]]
name = "fallback-rate"
kind = "ratio"
numerator = "ops_total"
denominator = "ops_total"
objective = 0.5

  [slo.numerator_labels]
  mode = "full"

[[slo]]
name = "degradations"
kind = "counter-max"
metric = "degradations_total"
objective = 0
"""


def _registry(latencies=(), full=0, incremental=0, degradations=0):
    registry = MetricsRegistry()
    for value in latencies:
        registry.observe("latency_seconds", value)
    if full:
        registry.inc("ops_total", full, mode="full")
    if incremental:
        registry.inc("ops_total", incremental, mode="incremental")
    if degradations:
        registry.inc("degradations_total", degradations)
    return registry


class TestSpecParsing:
    def test_parse_full_spec(self):
        slos = {slo.name: slo for slo in parse_slo_spec(SPEC)}
        assert set(slos) == {"lat-p95", "fallback-rate", "degradations"}
        lat = slos["lat-p95"]
        assert lat.kind == "latency"
        assert lat.percentile == 95.0
        assert lat.budget == pytest.approx(0.05)
        assert lat.windows == (
            BurnWindow(observations=20, max_burn_rate=1.0),
            BurnWindow(observations=5, max_burn_rate=4.0),
        )
        ratio = slos["fallback-rate"]
        assert ratio.numerator_labels == (("mode", "full"),)

    def test_minimal_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        assert _parse_toml_minimal(SPEC) == tomllib.loads(SPEC)

    def test_minimal_parser_scalars_and_comments(self):
        doc = _parse_toml_minimal(
            'a = 1  # comment\nb = 2.5\nc = "s"\nd = true\n'
        )
        assert doc == {"a": 1, "b": 2.5, "c": "s", "d": True}

    def test_repo_spec_loads(self):
        slos = load_slo_spec("benchmarks/serving_slo.toml")
        assert len(slos) == 10
        names = {s.name for s in slos}
        assert "serve-request-p95" in names
        assert "serve-identity-budget" in names

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(ObservabilityError):
            parse_slo_spec("schema_version = 99\n[[slo]]\n")

    def test_empty_spec_rejected(self):
        with pytest.raises(ObservabilityError):
            parse_slo_spec("schema_version = 1\n")

    def test_duplicate_names_rejected(self):
        spec = SPEC + '\n[[slo]]\nname = "lat-p95"\nkind = "counter-max"\n' \
            'metric = "x"\nobjective = 0\n'
        with pytest.raises(ObservabilityError):
            parse_slo_spec(spec)

    def test_slo_validation(self):
        with pytest.raises(ObservabilityError):
            SLO(name="x", kind="nope", objective=1.0)
        with pytest.raises(ObservabilityError):
            SLO(name="x", kind="latency", objective=1.0)  # no metric
        with pytest.raises(ObservabilityError):
            SLO(name="x", kind="ratio", objective=1.0)  # no num/denom
        with pytest.raises(ObservabilityError):
            SLO(name="x", kind="latency", metric="m", objective=1.0,
                percentile=100.0)
        with pytest.raises(ObservabilityError):
            SLO(name="x", kind="counter-max", metric="m", objective=1.0,
                windows=(BurnWindow(5, 1.0),))


class TestEvaluation:
    def test_latency_within_objective(self):
        report = evaluate_slos(
            parse_slo_spec(SPEC),
            _registry(latencies=[0.1] * 10, full=1, incremental=1),
        )
        verdict = report.verdicts[0]
        assert verdict.ok and not verdict.missing and not verdict.alerting
        assert verdict.measured == pytest.approx(0.1)
        assert report.ok

    def test_latency_breach(self):
        report = evaluate_slos(
            parse_slo_spec(SPEC), _registry(latencies=[2.0] * 10, full=1)
        )
        verdict = report.verdicts[0]
        assert not verdict.ok
        assert report.breached and not report.ok

    def test_latency_missing_metric(self):
        verdict = evaluate_slos(
            parse_slo_spec(SPEC), MetricsRegistry()
        ).verdicts[0]
        assert verdict.missing and verdict.ok

    def test_burn_rate_multi_window_and_semantics(self):
        """Alert only when every window burns: a recovered spike trips
        the slow window but not the fast one."""
        slo = SLO(
            name="lat", kind="latency", metric="latency_seconds",
            objective=0.5, percentile=95.0,
            windows=(BurnWindow(20, 1.0), BurnWindow(5, 4.0)),
        )
        # Sustained burn: everything bad -> both windows exceed.
        burning = evaluate_slos([slo], _registry([2.0] * 20)).verdicts[0]
        assert burning.alerting
        assert all(b["exceeded"] for b in burning.burn)
        assert burning.burn[0]["burn_rate"] == pytest.approx(1 / 0.05)
        # Old spike, recent recovery: fast window is clean -> no alert.
        recovered = evaluate_slos(
            [slo], _registry([2.0] * 15 + [0.1] * 5)
        ).verdicts[0]
        fast = [b for b in recovered.burn if b["observations"] == 5][0]
        slow = [b for b in recovered.burn if b["observations"] == 20][0]
        assert slow["exceeded"] and not fast["exceeded"]
        assert not recovered.alerting

    def test_ratio_with_label_subset(self):
        report = evaluate_slos(
            parse_slo_spec(SPEC), _registry(full=3, incremental=1)
        )
        verdict = report.verdicts[1]
        assert verdict.measured == pytest.approx(0.75)
        assert not verdict.ok

    def test_ratio_missing_denominator(self):
        verdict = evaluate_slos(
            parse_slo_spec(SPEC), MetricsRegistry()
        ).verdicts[1]
        assert verdict.missing and verdict.ok

    def test_counter_max_unobserved_is_clean_zero(self):
        verdict = evaluate_slos(
            parse_slo_spec(SPEC), MetricsRegistry()
        ).verdicts[2]
        assert verdict.ok and not verdict.missing
        assert verdict.measured == 0.0

    def test_counter_max_breach(self):
        verdict = evaluate_slos(
            parse_slo_spec(SPEC), _registry(degradations=2)
        ).verdicts[2]
        assert not verdict.ok and verdict.measured == 2.0

    def test_dump_mode_matches_live_for_exported_percentiles(self):
        registry = _registry(
            latencies=[float(i) for i in range(1, 101)], full=2,
            incremental=2, degradations=1,
        )
        live = evaluate_slos(parse_slo_spec(SPEC), registry)
        # Round-trip the registry through its JSON export.
        dump = json.loads(json.dumps(registry.to_dict()))
        dumped = evaluate_slos(parse_slo_spec(SPEC), dump)
        for lv, dv in zip(live.verdicts, dumped.verdicts):
            assert lv.ok == dv.ok
            assert lv.missing == dv.missing
            assert lv.measured == pytest.approx(dv.measured)
        # Burn windows need raw observations — dump mode cannot alert.
        assert dumped.verdicts[0].burn == []

    def test_dump_mode_unexported_percentile_is_missing(self):
        slo = SLO(
            name="p90", kind="latency", metric="latency_seconds",
            objective=0.5, percentile=90.0,
        )
        registry = _registry(latencies=[0.1] * 4)
        assert not evaluate_slos([slo], registry).verdicts[0].missing
        dumped = evaluate_slos([slo], registry.to_dict()).verdicts[0]
        assert dumped.missing
        assert "p90" in dumped.detail


class TestAnalysisCurrency:
    def test_report_source_and_rules(self):
        registry = _registry(
            latencies=[2.0] * 20, full=3, incremental=1, degradations=1
        )
        report = evaluate_slos(parse_slo_spec(SPEC), registry)
        doc = report.as_dict()
        assert doc["source"] == "slo"
        assert doc["checked"] == 3
        rules = {f["rule"] for f in doc["findings"]}
        assert rules == {"slo-breach", "slo-burn-rate"}
        assert doc["num_errors"] == 3  # all three objectives breached
        assert len(doc["verdicts"]) == 3
        # Findings anchor on the SLO name.
        assert all(
            f["location"].startswith("slo:") for f in doc["findings"]
        )

    def test_missing_metric_is_warning(self):
        report = evaluate_slos(parse_slo_spec(SPEC), MetricsRegistry())
        doc = report.as_dict()
        rules = [f["rule"] for f in doc["findings"]]
        assert rules == ["slo-missing-metric", "slo-missing-metric"]
        assert doc["num_errors"] == 0 and doc["num_warnings"] == 2

    def test_slo_rules_registered_in_findings_enum(self):
        for rule in ("slo-breach", "slo-burn-rate", "slo-missing-metric"):
            assert rule in RULES
        assert RULES["slo-breach"] == "error"
        assert RULES["slo-burn-rate"] == "warning"
        assert RULES["slo-missing-metric"] == "warning"

    def test_report_validates_against_schema_checker(self, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_obs_schema", "benchmarks/check_obs_schema.py"
        )
        checker = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(checker)

        registry = _registry(latencies=[2.0] * 20, full=3, degradations=1)
        report = evaluate_slos(parse_slo_spec(SPEC), registry)
        path = tmp_path / "slo.json"
        report.write(str(path))
        checker.check_slo(str(path))  # raises SystemExit on violation

    def test_to_text_statuses(self):
        registry = _registry(latencies=[2.0] * 20, full=3, incremental=1)
        text = evaluate_slos(parse_slo_spec(SPEC), registry).to_text()
        assert "BREACH" in text
        assert "breached" in text.splitlines()[0]
        missing = evaluate_slos(
            parse_slo_spec(SPEC), MetricsRegistry()
        ).to_text()
        assert "MISSING" in missing
