"""Tests for the roofline bottleneck advisor.

The load-bearing property is *exact attribution*: per kernel, the six
cause buckets must sum to the kernel's modeled seconds (ISSUE acceptance:
within 1e-9), and the advisor's totals must reconcile with the profiler
over the same timeline.  The synthetic tests then pin each verdict to a
hand-built launch record, and the identity test proves that building a
report never perturbs an engine run.
"""

import numpy as np
import pytest

from repro import obs
from repro.algorithms import ClassicLP
from repro.core.framework import GLPEngine
from repro.core.multigpu import MultiGPUEngine
from repro.errors import ObservabilityError
from repro.gpusim.config import TITAN_V
from repro.gpusim.counters import PerfCounters
from repro.gpusim.device import Device
from repro.gpusim.timing import KernelTiming
from repro.obs.advisor import (
    CAUSE_KEYS,
    KERNEL_VERDICTS,
    AdvisorReport,
    attribute_launch,
)
from repro.obs.profile import ProfileReport


@pytest.fixture()
def engine_and_report(powerlaw_graph):
    engine = GLPEngine()
    engine.run(
        powerlaw_graph,
        ClassicLP(),
        max_iterations=6,
        stop_on_convergence=False,
    )
    return engine, AdvisorReport.from_engine(engine)


class TestExactAttribution:
    def test_causes_sum_to_kernel_seconds(self, engine_and_report):
        _, report = engine_and_report
        assert report.kernels
        for kernel in report.kernels:
            assert sum(kernel.causes.values()) == pytest.approx(
                kernel.seconds, abs=1e-9
            )

    def test_reconciles_with_profiler(self, engine_and_report):
        engine, report = engine_and_report
        profile = ProfileReport.from_engine(engine)
        assert report.kernel_seconds == pytest.approx(
            profile.kernel_seconds, abs=1e-12
        )
        by_name = {row.name: row for row in profile.rows}
        for kernel in report.kernels:
            assert kernel.seconds == pytest.approx(
                by_name[kernel.name].seconds, abs=1e-12
            )
            assert kernel.launches == by_name[kernel.name].launches

    def test_total_causes_sum_to_total_seconds(self, engine_and_report):
        _, report = engine_and_report
        assert sum(report.total_causes().values()) == pytest.approx(
            report.kernel_seconds, abs=1e-9
        )

    def test_every_launch_attributes_exactly(self, engine_and_report):
        engine, _ = engine_and_report
        for record in engine.device.timeline:
            causes = attribute_launch(
                record.timing, record.counters, engine.device.spec
            )
            assert set(causes) == set(CAUSE_KEYS)
            assert sum(causes.values()) == pytest.approx(
                record.timing.total_seconds, rel=1e-12
            )


def _timing(spec, counters, *, memory_seconds=0.0):
    """Roofline timing for hand-built counters (compute side exact)."""
    compute_cycles = (
        counters.warp_instructions
        + (counters.shared_load_ops + counters.shared_store_ops) / 32
        + counters.shared_bank_conflicts
        + counters.shared_atomic_serialized_ops
        * spec.shared_atomic_cost_cycles
        + counters.global_atomic_serialized_ops
        * spec.global_atomic_cost_cycles
    )
    return KernelTiming(
        compute_seconds=compute_cycles / spec.warp_throughput,
        memory_seconds=memory_seconds,
        launch_overhead=spec.kernel_launch_overhead,
    )


class TestSyntheticVerdicts:
    """Each verdict from a launch built to exhibit exactly that cause."""

    spec = TITAN_V

    def attribute(self, counters, *, memory_seconds=0.0):
        timing = _timing(self.spec, counters, memory_seconds=memory_seconds)
        causes = attribute_launch(timing, counters, self.spec)
        assert sum(causes.values()) == pytest.approx(
            timing.total_seconds, rel=1e-12
        )
        return max(CAUSE_KEYS, key=lambda c: causes[c]), causes

    def test_memory_bound(self):
        counters = PerfCounters(
            warp_instructions=10, active_lane_sum=320
        )
        dominant, _ = self.attribute(counters, memory_seconds=1e-3)
        assert dominant == "global_memory"

    def test_compute_bound(self):
        counters = PerfCounters(
            warp_instructions=10**9, active_lane_sum=32 * 10**9
        )
        dominant, causes = self.attribute(counters)
        assert dominant == "compute_issue"
        assert causes["divergence"] == pytest.approx(0.0, abs=1e-15)

    def test_divergence_bound(self):
        # Packed warps would need ~3% of these issue slots: almost all
        # lanes idle.
        counters = PerfCounters(
            warp_instructions=10**9, active_lane_sum=10**9
        )
        dominant, _ = self.attribute(counters)
        assert dominant == "divergence"

    def test_conflict_bound(self):
        counters = PerfCounters(
            warp_instructions=10**6,
            active_lane_sum=32 * 10**6,
            shared_bank_conflicts=10**9,
        )
        dominant, _ = self.attribute(counters)
        assert dominant == "bank_conflicts"

    def test_atomic_bound(self):
        counters = PerfCounters(
            warp_instructions=10**6,
            active_lane_sum=32 * 10**6,
            global_atomic_serialized_ops=10**8,
        )
        dominant, _ = self.attribute(counters)
        assert dominant == "atomics"

    def test_latency_bound(self):
        counters = PerfCounters(warp_instructions=1, active_lane_sum=32)
        dominant, _ = self.attribute(counters)
        assert dominant == "launch_overhead"


class TestVerdictsAndFindings:
    def test_verdicts_in_enum(self, engine_and_report):
        _, report = engine_and_report
        verdicts = report.verdicts()
        assert verdicts
        assert set(verdicts.values()) <= KERNEL_VERDICTS

    def test_findings_ranked_by_severity(self, engine_and_report):
        _, report = engine_and_report
        severities = [f.severity for f in report.findings]
        assert severities == sorted(severities, reverse=True)

    def test_every_finding_has_hint(self, engine_and_report):
        _, report = engine_and_report
        assert report.findings
        for finding in report.findings:
            assert finding.hint
            assert finding.kernel
            assert finding.message

    def test_to_dict_round_trips_json(self, engine_and_report):
        import json

        _, report = engine_and_report
        doc = json.loads(report.to_json())
        assert doc["kernels"]
        for kernel in doc["kernels"]:
            assert sum(kernel["causes"].values()) == pytest.approx(
                kernel["seconds"], abs=1e-9
            )

    def test_to_text_renders(self, engine_and_report):
        _, report = engine_and_report
        text = report.to_text(top=2)
        assert "roofline bottleneck advisor" in text
        assert "findings" in text


class TestEdgeCases:
    def test_empty_device(self):
        report = AdvisorReport.from_devices([Device(TITAN_V)])
        assert report.kernels == []
        assert report.findings == []
        assert report.transfer_fraction == 0.0
        assert "no kernel launches" in report.to_text()

    def test_no_devices_rejected(self):
        with pytest.raises(ObservabilityError):
            AdvisorReport.from_devices([])

    def test_engine_without_device_rejected(self):
        with pytest.raises(ObservabilityError):
            AdvisorReport.from_engine(object())

    def test_multigpu_engine(self, powerlaw_graph):
        engine = MultiGPUEngine(2)
        engine.run(
            powerlaw_graph,
            ClassicLP(),
            max_iterations=3,
            stop_on_convergence=False,
        )
        report = AdvisorReport.from_engine(engine)
        assert report.num_devices == 2
        for kernel in report.kernels:
            assert sum(kernel.causes.values()) == pytest.approx(
                kernel.seconds, abs=1e-9
            )


class TestSchemaCheckerSync:
    """benchmarks/check_obs_schema.py hardcodes the enums (it must stay
    standalone); this pins them to the module's definitions."""

    def test_script_constants_match_module(self):
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "check_obs_schema.py"
        )
        spec = importlib.util.spec_from_file_location(
            "check_obs_schema", script
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.KERNEL_VERDICTS == set(KERNEL_VERDICTS)
        assert module.CAUSE_KEYS == set(CAUSE_KEYS)


class TestAdvisorIdentity:
    def test_building_report_changes_nothing(self, powerlaw_graph):
        engine_plain = GLPEngine()
        baseline = engine_plain.run(
            powerlaw_graph,
            ClassicLP(),
            max_iterations=5,
            stop_on_convergence=False,
        )
        engine_advised = GLPEngine()
        with obs.observe():
            advised = engine_advised.run(
                powerlaw_graph,
                ClassicLP(),
                max_iterations=5,
                stop_on_convergence=False,
            )
            AdvisorReport.from_engine(engine_advised)
        assert np.array_equal(baseline.labels, advised.labels)
        assert baseline.total_seconds == advised.total_seconds
        assert (
            baseline.total_counters.as_dict()
            == advised.total_counters.as_dict()
        )
