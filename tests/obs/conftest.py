"""Observability test fixtures."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_obs_leakage():
    """Guarantee every test starts and ends with observability off."""
    obs.disable()
    yield
    obs.disable()
