"""Tests for the nvprof-style profiler report (and counter satellites)."""

import json

import pytest

from repro.algorithms import ClassicLP
from repro.core.framework import GLPEngine
from repro.core.multigpu import MultiGPUEngine
from repro.errors import ObservabilityError
from repro.gpusim.counters import PerfCounters
from repro.obs import ProfileReport
from repro.obs.profile import SORT_KEYS


@pytest.fixture
def glp_run(powerlaw_graph):
    engine = GLPEngine()
    result = engine.run(powerlaw_graph, ClassicLP(), max_iterations=5)
    return engine, result


class TestReconciliation:
    def test_kernel_rows_sum_to_run_total(self, glp_run):
        """The headline invariant: the table reconciles to the result.

        GLP's setup transfers happen before the first iteration snapshot,
        so the per-iteration deltas are pure kernel time and the kernel
        section of the profile must sum to ``LPResult.total_seconds``.
        """
        engine, result = glp_run
        report = ProfileReport.from_engine(engine)
        assert report.kernel_seconds == pytest.approx(
            result.total_seconds, rel=1e-9
        )

    def test_launch_count_matches_timeline(self, glp_run):
        engine, _ = glp_run
        report = ProfileReport.from_engine(engine)
        assert report.total_launches == len(engine.device.timeline)

    def test_memcpy_rows_cover_setup_transfers(self, glp_run):
        engine, _ = glp_run
        report = ProfileReport.from_engine(engine)
        h2d = [m for m in report.memcpys if m.name == "[memcpy HtoD]"]
        assert h2d and h2d[0].bytes > 0
        assert report.transfer_seconds > 0


class TestSorting:
    def test_time_sort_is_descending(self, glp_run):
        engine, _ = glp_run
        rows = ProfileReport.from_engine(engine).sorted_rows("time")
        seconds = [r.seconds for r in rows]
        assert seconds == sorted(seconds, reverse=True)

    def test_name_sort_is_ascending(self, glp_run):
        engine, _ = glp_run
        rows = ProfileReport.from_engine(engine).sorted_rows("name")
        names = [r.name for r in rows]
        assert names == sorted(names)

    def test_unknown_key_raises(self, glp_run):
        engine, _ = glp_run
        with pytest.raises(ObservabilityError):
            ProfileReport.from_engine(engine).sorted_rows("vibes")


class TestExport:
    def test_to_dict_schema(self, glp_run):
        engine, _ = glp_run
        doc = ProfileReport.from_engine(engine).to_dict()
        for key in (
            "num_devices", "kernel_seconds", "transfer_seconds",
            "total_launches", "kernels", "memcpys",
        ):
            assert key in doc
        kernel = doc["kernels"][0]
        for key in (
            "name", "launches", "seconds", "avg_seconds",
            "global_transactions", "lane_utilization",
            "atomic_serialized_ops", "counters",
        ):
            assert key in kernel

    def test_to_json_parses(self, glp_run):
        engine, _ = glp_run
        doc = json.loads(ProfileReport.from_engine(engine).to_json())
        assert doc["total_launches"] > 0

    def test_text_table_reconciles_visibly(self, glp_run):
        engine, _ = glp_run
        text = ProfileReport.from_engine(engine).to_text()
        assert "[kernel total]" in text
        assert "[memcpy HtoD]" in text
        assert "Time(%)" in text and "LaneUtil" in text


class TestEngineDiscovery:
    def test_multigpu_exposes_all_devices(self, powerlaw_graph):
        engine = MultiGPUEngine(2)
        engine.run(powerlaw_graph, ClassicLP(), max_iterations=3)
        report = ProfileReport.from_engine(engine)
        assert report.num_devices == 2
        assert report.total_launches > 0

    def test_deviceless_engine_rejected(self):
        with pytest.raises(ObservabilityError):
            ProfileReport.from_engine(object())

    def test_no_devices_rejected(self):
        with pytest.raises(ObservabilityError):
            ProfileReport.from_devices([])


class TestCounterSatellites:
    def test_as_dict_derived_fields(self):
        counters = PerfCounters(
            global_load_transactions=10,
            global_store_transactions=5,
            warp_instructions=4,
            active_lane_sum=96,
        )
        base = counters.as_dict()
        assert "global_transactions" not in base
        derived = counters.as_dict(include_derived=True)
        assert derived["global_transactions"] == 15
        assert derived["lane_utilization"] == pytest.approx(0.75)

    def test_repr_shows_derived_and_nonzero(self):
        counters = PerfCounters(
            global_load_transactions=10,
            warp_instructions=4,
            active_lane_sum=96,
        )
        text = repr(counters)
        assert "global_load_transactions=10" in text
        assert "global_transactions=10" in text
        assert "lane_utilization=0.750" in text
        assert "global_store_transactions" not in text


class TestSchemaVersion:
    def test_to_dict_carries_schema_version(self, glp_run):
        from repro.obs.profile import SCHEMA_VERSION

        engine, _ = glp_run
        doc = ProfileReport.from_engine(engine).to_dict()
        assert doc["schema_version"] == SCHEMA_VERSION
        assert json.loads(json.dumps(doc))["schema_version"] >= 1
